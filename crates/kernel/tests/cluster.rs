//! Integration tests for the DO/CT kernel: invocations (RPC and DSM),
//! thread attributes, TCB trails, event routing with every locator,
//! groups, timers, and termination via the default dispatcher.

use doct_kernel::{
    ClassBuilder, Cluster, ClusterBuilder, InvocationMode, KernelConfig, KernelError,
    LocatorStrategy, ObjectConfig, RaiseTarget, SpawnOptions, SystemEvent, Value,
};
use doct_net::{MessageClass, NodeId};
use std::time::Duration;

/// A class whose `chain` entry invokes the next object in a list,
/// building a cross-node invocation chain; `depth` reports how deep the
/// frame is; `where` reports the executing node.
fn register_chain_class(cluster: &Cluster) {
    cluster.register_class(
        "chain",
        ClassBuilder::new("chain")
            .entry("chain", |ctx, args| {
                let list = args.as_list().unwrap_or(&[]).to_vec();
                match list.split_first() {
                    None => Ok(Value::Int(ctx.node_id().0 as i64)),
                    Some((head, rest)) => {
                        let next = doct_kernel::ObjectId(head.as_int().unwrap() as u64);
                        ctx.invoke(next, "chain", Value::List(rest.to_vec()))
                    }
                }
            })
            .entry("where", |ctx, _| Ok(Value::Int(ctx.node_id().0 as i64)))
            .entry("depth", |ctx, _| Ok(Value::Int(ctx.current_depth() as i64)))
            .entry("sleepy", |ctx, args| {
                let ms = args.as_int().unwrap_or(100) as u64;
                ctx.sleep(Duration::from_millis(ms))?;
                Ok(Value::Str("woke".into()))
            })
            .build(),
    );
    cluster.register_class(
        "counter",
        ClassBuilder::new("counter")
            .entry("bump", |ctx, _| {
                ctx.with_state(|s| {
                    let n = s.get("n").and_then(Value::as_int).unwrap_or(0);
                    s.set("n", n + 1);
                    Value::Int(n + 1)
                })
            })
            .entry("get", |ctx, _| {
                Ok(Value::Int(
                    ctx.read_state()?
                        .get("n")
                        .and_then(Value::as_int)
                        .unwrap_or(0),
                ))
            })
            .build(),
    );
}

fn chain_objects(cluster: &Cluster, homes: &[u32]) -> Vec<doct_kernel::ObjectId> {
    homes
        .iter()
        .map(|&h| {
            cluster
                .create_object(ObjectConfig::new("chain", NodeId(h)))
                .unwrap()
        })
        .collect()
}

#[test]
fn local_invocation_round_trip() {
    let cluster = Cluster::new(1);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[0])[0];
    let r = cluster.spawn(0, obj, "where", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(0));
}

#[test]
fn remote_invocation_executes_at_home_node_in_rpc_mode() {
    let cluster = Cluster::new(3);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[2])[0];
    let r = cluster.spawn(0, obj, "where", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(2), "RPC: code runs at the home node");
    assert!(cluster.net().stats().sent(MessageClass::Invocation) >= 2);
}

#[test]
fn dsm_mode_executes_at_caller_and_moves_data() {
    let cluster = ClusterBuilder::new(3)
        .config(KernelConfig::with_mode(InvocationMode::Dsm))
        .build();
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[2])[0];
    let r = cluster.spawn(0, obj, "where", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(0), "DSM: code runs at the caller");
    assert_eq!(cluster.net().stats().sent(MessageClass::Invocation), 0);
}

#[test]
fn dsm_mode_state_faults_across() {
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig::with_mode(InvocationMode::Dsm))
        .build();
    register_chain_class(&cluster);
    let obj = cluster
        .create_object(ObjectConfig::new("counter", NodeId(1)))
        .unwrap();
    let r = cluster.spawn(0, obj, "bump", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(1));
    assert!(
        cluster.net().stats().sent(MessageClass::Dsm) > 0,
        "state pages must travel"
    );
    // State is coherent: a second bump from the home node sees n=1.
    let r = cluster.spawn(1, obj, "bump", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(2));
}

#[test]
fn invocation_chain_across_nodes() {
    let cluster = Cluster::new(4);
    register_chain_class(&cluster);
    let objs = chain_objects(&cluster, &[1, 2, 3]);
    let args = Value::List(objs[1..].iter().map(|o| Value::Int(o.0 as i64)).collect());
    let r = cluster.spawn(0, objs[0], "chain", args).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(3), "tail of the chain runs on n3");
}

#[test]
fn state_round_trip_and_persistence() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let obj = cluster
        .create_object(ObjectConfig::new("counter", NodeId(1)))
        .unwrap();
    for expected in 1..=5i64 {
        let r = cluster.spawn(0, obj, "bump", Value::Null).unwrap().join();
        assert_eq!(r.unwrap(), Value::Int(expected));
    }
    // The object is passive between invocations; state persisted.
    let r = cluster.spawn(1, obj, "get", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(5));
}

#[test]
fn unknown_object_and_entry_errors() {
    let cluster = Cluster::new(1);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[0])[0];
    let r = cluster.spawn(0, obj, "nope", Value::Null).unwrap().join();
    assert!(matches!(r, Err(KernelError::UnknownEntry { .. })), "{r:?}");
    let bogus = doct_kernel::ObjectId::new(NodeId(0), 999);
    let r = cluster.spawn(0, bogus, "x", Value::Null).unwrap().join();
    assert!(matches!(r, Err(KernelError::UnknownObject(_))), "{r:?}");
}

#[test]
fn panic_in_entry_is_contained() {
    let cluster = Cluster::new(1);
    cluster.register_class(
        "bomb",
        ClassBuilder::new("bomb")
            .entry("explode", |_ctx, _| panic!("boom"))
            .build(),
    );
    let obj = cluster
        .create_object(ObjectConfig::new("bomb", NodeId(0)))
        .unwrap();
    let r = cluster
        .spawn(0, obj, "explode", Value::Null)
        .unwrap()
        .join();
    match r {
        Err(KernelError::InvocationFailed(msg)) => assert!(msg.contains("boom"), "{msg}"),
        other => panic!("expected contained panic, got {other:?}"),
    }
}

#[test]
fn io_follows_the_thread_across_objects() {
    let cluster = Cluster::new(3);
    cluster.register_class(
        "printer",
        ClassBuilder::new("printer")
            .entry("print", |ctx, args| {
                ctx.emit(format!("from n{}: {}", ctx.node_id().0, args));
                Ok(Value::Null)
            })
            .build(),
    );
    let far = cluster
        .create_object(ObjectConfig::new("printer", NodeId(2)))
        .unwrap();
    let opts = SpawnOptions {
        io_channel: Some("tty7".into()),
        ..Default::default()
    };
    cluster
        .spawn_with(0, opts, far, "print", "hello")
        .unwrap()
        .join()
        .unwrap();
    let lines = cluster.io().lines("tty7");
    assert_eq!(lines, vec!["from n2: \"hello\""]);
}

#[test]
fn terminate_event_unwinds_a_sleeping_thread() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[1])[0];
    let handle = cluster.spawn(0, obj, "sleepy", Value::Int(30_000)).unwrap();
    let thread = handle.thread();
    std::thread::sleep(Duration::from_millis(50));
    let ticket = cluster.raise_from(0, SystemEvent::Terminate, Value::Null, thread);
    let summary = ticket.wait();
    assert_eq!(summary.delivered, 1, "{summary:?}");
    let r = handle
        .join_timeout(Duration::from_secs(5))
        .expect("unwound");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
}

#[test]
fn terminate_unwinds_across_the_whole_invocation_chain() {
    let cluster = Cluster::new(4);
    register_chain_class(&cluster);
    cluster.register_class(
        "deep",
        ClassBuilder::new("deep")
            .entry("go", |ctx, args| {
                let list = args.as_list().unwrap_or(&[]).to_vec();
                match list.split_first() {
                    None => {
                        ctx.sleep(Duration::from_secs(30))?;
                        Ok(Value::Null)
                    }
                    Some((head, rest)) => {
                        let next = doct_kernel::ObjectId(head.as_int().unwrap() as u64);
                        ctx.invoke(next, "go", Value::List(rest.to_vec()))
                    }
                }
            })
            .build(),
    );
    let objs: Vec<_> = (0..4)
        .map(|h| {
            cluster
                .create_object(ObjectConfig::new("deep", NodeId(h)))
                .unwrap()
        })
        .collect();
    let args = Value::List(objs[1..].iter().map(|o| Value::Int(o.0 as i64)).collect());
    let handle = cluster.spawn(0, objs[0], "go", args).unwrap();
    let thread = handle.thread();
    std::thread::sleep(Duration::from_millis(100));
    // The tip sleeps on node 3; TERMINATE must chase it there (PathTrace)
    // and the unwind must propagate back through nodes 2, 1, 0.
    let _ = cluster
        .raise_from(0, SystemEvent::Terminate, Value::Null, thread)
        .wait();
    let r = handle
        .join_timeout(Duration::from_secs(5))
        .expect("unwound");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    assert!(
        cluster.await_quiescence(Duration::from_secs(5)),
        "no orphans"
    );
}

fn locator_cluster(strategy: LocatorStrategy) -> Cluster {
    ClusterBuilder::new(4)
        .config(KernelConfig::with_locator(strategy))
        .build()
}

#[test]
fn all_locators_find_a_thread_mid_chain() {
    for strategy in [
        LocatorStrategy::Broadcast,
        LocatorStrategy::PathTrace,
        LocatorStrategy::Multicast,
    ] {
        let cluster = locator_cluster(strategy);
        register_chain_class(&cluster);
        let objs = chain_objects(&cluster, &[1, 2, 3]);
        cluster.register_class(
            "deep2",
            ClassBuilder::new("deep2")
                .entry("go", |ctx, args| {
                    let list = args.as_list().unwrap_or(&[]).to_vec();
                    match list.split_first() {
                        None => {
                            ctx.sleep(Duration::from_secs(30))?;
                            Ok(Value::Null)
                        }
                        Some((head, rest)) => {
                            let next = doct_kernel::ObjectId(head.as_int().unwrap() as u64);
                            ctx.invoke(next, "go", Value::List(rest.to_vec()))
                        }
                    }
                })
                .build(),
        );
        let deep: Vec<_> = [1u32, 2, 3]
            .iter()
            .map(|&h| {
                cluster
                    .create_object(ObjectConfig::new("deep2", NodeId(h)))
                    .unwrap()
            })
            .collect();
        let _ = objs;
        let args = Value::List(deep[1..].iter().map(|o| Value::Int(o.0 as i64)).collect());
        let handle = cluster.spawn(0, deep[0], "go", args).unwrap();
        let thread = handle.thread();
        std::thread::sleep(Duration::from_millis(100));
        let summary = cluster
            .raise_from(0, SystemEvent::Terminate, Value::Null, thread)
            .wait();
        assert_eq!(summary.delivered, 1, "{strategy:?}: {summary:?}");
        assert_eq!(
            summary.nodes,
            vec![NodeId(3)],
            "{strategy:?} must find the tip on n3"
        );
        let r = handle
            .join_timeout(Duration::from_secs(5))
            .expect("unwound");
        assert!(
            matches!(r, Err(KernelError::Terminated)),
            "{strategy:?}: {r:?}"
        );
    }
}

#[test]
fn dead_thread_notifies_the_raiser() {
    for strategy in [
        LocatorStrategy::Broadcast,
        LocatorStrategy::PathTrace,
        LocatorStrategy::Multicast,
    ] {
        let cluster = locator_cluster(strategy);
        register_chain_class(&cluster);
        let obj = chain_objects(&cluster, &[1])[0];
        let handle = cluster.spawn(0, obj, "where", Value::Null).unwrap();
        let thread = handle.thread();
        handle.join().unwrap();
        cluster.await_quiescence(Duration::from_secs(2));
        let summary = cluster
            .raise_from(2, SystemEvent::Timer, Value::Null, thread)
            .wait();
        assert_eq!(summary.dead, 1, "{strategy:?}: {summary:?}");
        assert_eq!(summary.delivered, 0, "{strategy:?}");
    }
}

#[test]
fn broadcast_costs_scale_with_cluster_size() {
    let cluster = locator_cluster(LocatorStrategy::Broadcast);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[1])[0];
    let handle = cluster.spawn(1, obj, "sleepy", Value::Int(5_000)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let before = cluster.net().stats().snapshot();
    let _ = cluster
        .raise_from(2, SystemEvent::Timer, Value::Null, handle.thread())
        .wait();
    let delta = before.delta(&cluster.net().stats().snapshot());
    // 3 probes out + receipts back: strictly more than PathTrace would use.
    assert!(
        delta.sent(MessageClass::Locate) >= 4,
        "broadcast locate traffic: {delta}"
    );
    let _ = cluster
        .raise_from(0, SystemEvent::Terminate, Value::Null, handle.thread())
        .wait();
    let _ = handle.join_timeout(Duration::from_secs(5));
}

#[test]
fn group_raise_reaches_every_member() {
    let cluster = Cluster::new(3);
    register_chain_class(&cluster);
    let group = cluster.create_group();
    let objs = chain_objects(&cluster, &[0, 1, 2]);
    let mut handles = Vec::new();
    for (i, &obj) in objs.iter().enumerate() {
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        handles.push(
            cluster
                .spawn_with(i, opts, obj, "sleepy", Value::Int(30_000))
                .unwrap(),
        );
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(cluster.groups().member_count(group), 3);
    let summary = cluster
        .raise_from(
            0,
            SystemEvent::Terminate,
            Value::Null,
            RaiseTarget::Group(group),
        )
        .wait();
    assert_eq!(summary.delivered, 3, "{summary:?}");
    for h in handles {
        let r = h.join_timeout(Duration::from_secs(5)).expect("terminated");
        assert!(matches!(r, Err(KernelError::Terminated)));
    }
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_eq!(
        cluster.groups().member_count(group),
        0,
        "members left on exit"
    );
}

#[test]
fn async_invocations_inherit_group_and_attributes() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let group = cluster.create_group();
    let far = chain_objects(&cluster, &[1])[0];
    let opts = SpawnOptions {
        group: Some(group),
        io_channel: Some("console".into()),
        ..Default::default()
    };
    let handle = cluster
        .spawn_fn_with(0, opts, move |ctx| {
            let child = ctx.invoke_async(far, "where", Value::Null);
            // Child inherits group + io channel.
            let result = child.claim()?;
            ctx.emit(format!("child says {result}"));
            Ok(result)
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), Value::Int(1));
    assert_eq!(
        cluster.io().lines("console"),
        vec!["child says 1"],
        "parent io channel works"
    );
}

#[test]
fn raise_and_wait_resumes_via_default_dispatcher() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[1])[0];
    // A thread raises INTERRUPT synchronously at itself: the default
    // dispatcher resumes it with Null.
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            let me = ctx.thread_id();
            let verdict = ctx.raise_and_wait(SystemEvent::Interrupt, Value::Null, me)?;
            assert_eq!(verdict, Value::Null);
            ctx.invoke(obj, "where", Value::Null)
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), Value::Int(1));
}

#[test]
fn checked_div_without_handler_fails() {
    let cluster = Cluster::new(1);
    let handle = cluster
        .spawn_fn(0, |ctx| {
            assert_eq!(ctx.checked_div(10, 2)?, 5);
            match ctx.checked_div(10, 0) {
                Err(KernelError::InvocationFailed(msg)) => {
                    assert!(msg.contains("division"), "{msg}");
                    Ok(Value::Null)
                }
                other => panic!("expected unrepaired div-zero, got {other:?}"),
            }
        })
        .unwrap();
    handle.join().unwrap();
}

#[test]
fn timers_chase_a_thread() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    // Thread registers a 20ms timer on node 0, then spends its life inside
    // an object on node 1; TIMER events must reach it there. The default
    // dispatcher ignores TIMER, but delivery stats count it.
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            ctx.add_timer(Duration::from_millis(20), "tick");
            ctx.invoke(far, "sleepy", Value::Int(300))
        })
        .unwrap();
    handle.join().unwrap();
    let delivered: u64 = (0..2)
        .map(|i| {
            cluster
                .kernel(i)
                .stats()
                .thread_events
                .load(std::sync::atomic::Ordering::Relaxed)
        })
        .sum();
    assert!(
        delivered >= 2,
        "expected several TIMER deliveries, got {delivered}"
    );
}

#[test]
fn raise_to_unknown_object_reports_dead() {
    let cluster = Cluster::new(1);
    let bogus = doct_kernel::ObjectId::new(NodeId(0), 42);
    let summary = cluster
        .raise_from(0, SystemEvent::Delete, Value::Null, bogus)
        .wait();
    assert_eq!(summary.dead, 1);
}

#[test]
fn value_arguments_round_trip_through_remote_invocation() {
    let cluster = Cluster::new(2);
    cluster.register_class(
        "echo",
        ClassBuilder::new("echo")
            .entry("echo", |_ctx, args| Ok(args))
            .build(),
    );
    let obj = cluster
        .create_object(ObjectConfig::new("echo", NodeId(1)))
        .unwrap();
    let mut payload = Value::map();
    payload.set(
        "list",
        Value::List(vec![Value::Int(1), Value::Str("two".into())]),
    );
    payload.set("blob", vec![9u8; 300]);
    let r = cluster
        .spawn(0, obj, "echo", payload.clone())
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(r, payload);
}

#[test]
fn one_shot_alarm_fires_once() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    // Register a 30ms alarm, then work remotely; the ALARM must chase the
    // thread and fire exactly once (default dispatcher ignores it, but
    // delivery stats count it).
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            ctx.set_alarm(Duration::from_millis(30), "wake");
            ctx.invoke(far, "sleepy", Value::Int(300))
        })
        .unwrap();
    handle.join().unwrap();
    let delivered: u64 = (0..2)
        .map(|i| {
            cluster
                .kernel(i)
                .stats()
                .thread_events
                .load(std::sync::atomic::Ordering::Relaxed)
        })
        .sum();
    assert_eq!(delivered, 1, "one-shot alarm fired exactly once");
}

#[test]
fn cancelled_alarm_never_fires() {
    let cluster = Cluster::new(1);
    let handle = cluster
        .spawn_fn(0, |ctx| {
            let id = ctx.set_alarm(Duration::from_millis(50), "wake");
            ctx.cancel_timer(id);
            ctx.sleep(Duration::from_millis(150))?;
            Ok(Value::Null)
        })
        .unwrap();
    handle.join().unwrap();
    let delivered = cluster
        .kernel(0)
        .stats()
        .thread_events
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(delivered, 0, "cancelled alarm must not fire");
}

#[test]
fn exclusive_objects_serialize_concurrent_bumps() {
    // The counter's read-modify-write would lose updates under concurrent
    // invocation; `exclusive()` must serialize them.
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let obj = cluster
        .create_object(
            ObjectConfig::new("counter", NodeId(1))
                .with_state(Value::map())
                .exclusive(),
        )
        .unwrap();
    let mut handles = Vec::new();
    for i in 0..4 {
        let h = cluster
            .spawn_fn(i % 2, move |ctx| {
                for _ in 0..25 {
                    ctx.invoke(obj, "bump", Value::Null)?;
                }
                Ok(Value::Null)
            })
            .unwrap();
        handles.push(h);
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = cluster
        .spawn(0, obj, "get", Value::Null)
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(
        total,
        Value::Int(100),
        "no lost updates on exclusive object"
    );
}

#[test]
fn oversized_state_is_rejected() {
    let cluster = Cluster::new(1);
    cluster.register_class(
        "bloater",
        ClassBuilder::new("bloater")
            .entry("bloat", |ctx, args| {
                let n = args.as_int().unwrap_or(0) as usize;
                ctx.with_state(|s| {
                    s.set("blob", vec![0u8; n]);
                })?;
                Ok(Value::Null)
            })
            .build(),
    );
    let obj = cluster
        .create_object(ObjectConfig::new("bloater", NodeId(0)).with_state_size(1024))
        .unwrap();
    // Fits.
    cluster
        .spawn(0, obj, "bloat", Value::Int(100))
        .unwrap()
        .join()
        .unwrap();
    // Does not fit.
    let r = cluster
        .spawn(0, obj, "bloat", Value::Int(10_000))
        .unwrap()
        .join();
    assert!(matches!(r, Err(KernelError::StateTooLarge { .. })), "{r:?}");
    // State unchanged by the failed write? The failed with_state never
    // wrote; the previous blob is intact.
    let cluster2 = &cluster;
    let _ = cluster2;
}

#[test]
fn create_object_rejects_unknown_class_and_node() {
    let cluster = Cluster::new(1);
    let r = cluster.create_object(ObjectConfig::new("ghost", NodeId(0)));
    assert!(matches!(r, Err(KernelError::UnknownClass(_))), "{r:?}");
    register_chain_class(&cluster);
    let r = cluster.create_object(ObjectConfig::new("chain", NodeId(9)));
    assert!(matches!(r, Err(KernelError::UnknownNode(_))), "{r:?}");
}

#[test]
fn initial_state_too_large_is_rejected_at_creation() {
    let cluster = Cluster::new(1);
    register_chain_class(&cluster);
    let cfg = ObjectConfig::new("counter", NodeId(0))
        .with_state(Value::from(vec![0u8; 4096]))
        .with_state_size(256);
    let r = cluster.create_object(cfg);
    assert!(matches!(r, Err(KernelError::StateTooLarge { .. })), "{r:?}");
}

#[test]
fn cut_link_fails_remote_invocation() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    cluster.net().set_link(NodeId(0), NodeId(1), false).unwrap();
    let r = cluster.spawn(0, far, "where", Value::Null).unwrap().join();
    assert!(matches!(r, Err(KernelError::Timeout(_))), "{r:?}");
    cluster.net().heal();
    let r = cluster.spawn(0, far, "where", Value::Null).unwrap().join();
    assert_eq!(r.unwrap(), Value::Int(1), "healed link works again");
}

#[test]
fn spawn_on_invalid_node_errors() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[0])[0];
    let r = cluster.spawn(7, obj, "where", Value::Null);
    assert!(matches!(r, Err(KernelError::UnknownNode(_))));
}

#[test]
fn group_raise_on_empty_group_delivers_nothing() {
    let cluster = Cluster::new(1);
    let group = cluster.create_group();
    let summary = cluster
        .raise_from(
            0,
            SystemEvent::Timer,
            Value::Null,
            RaiseTarget::Group(group),
        )
        .wait();
    assert_eq!(summary.delivered, 0);
    assert_eq!(summary.dead, 0);
}

#[test]
fn pc_advances_with_compute() {
    let cluster = Cluster::new(1);
    let handle = cluster
        .spawn_fn(0, |ctx| {
            assert_eq!(ctx.pc(), 0);
            ctx.compute(1_000)?;
            assert_eq!(ctx.pc(), 1_000);
            ctx.compute(234)?;
            Ok(Value::Int(ctx.pc() as i64))
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), Value::Int(1234));
}

#[test]
fn attributes_values_travel_and_return() {
    // Per-thread key/value memory written on a remote node is visible
    // after the thread returns home (attributes ship both ways).
    let cluster = Cluster::new(2);
    cluster.register_class(
        "tagger",
        ClassBuilder::new("tagger")
            .entry("tag", |ctx, args| {
                ctx.with_attributes(|a| {
                    a.values.insert("visited".into(), args.clone());
                });
                Ok(Value::Null)
            })
            .build(),
    );
    let far = cluster
        .create_object(ObjectConfig::new("tagger", NodeId(1)))
        .unwrap();
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            ctx.invoke(far, "tag", "n1-was-here")?;
            Ok(ctx
                .attributes()
                .values
                .get("visited")
                .cloned()
                .unwrap_or(Value::Null))
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), Value::Str("n1-was-here".into()));
}

#[test]
fn partitioned_delivery_times_out_with_status() {
    use std::time::Duration as D;
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: D::from_millis(300),
            delivery_retries: 1,
            ..KernelConfig::default()
        })
        .build();
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[1])[0];
    let handle = cluster.spawn(0, obj, "sleepy", Value::Int(2_000)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // Cut the cluster in half: the raiser (node 0) cannot reach the tip
    // on node 1, and path-trace probes die on the wire.
    cluster.net().isolate(&[NodeId(1)]).unwrap();
    let summary = cluster
        .raise_from(0, SystemEvent::Timer, Value::Null, handle.thread())
        .wait();
    assert_eq!(summary.delivered, 0, "{summary:?}");
    assert_eq!(
        summary.dead + summary.timed_out,
        1,
        "partition must surface as dead/timeout: {summary:?}"
    );
    cluster.net().heal();
    let _ = handle.join_timeout(Duration::from_secs(10));
}

#[test]
fn delivery_summary_accessors() {
    let cluster = Cluster::new(1);
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[0])[0];
    let handle = cluster.spawn(0, obj, "sleepy", Value::Int(500)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let summary = cluster
        .raise_from(0, SystemEvent::Timer, Value::Null, handle.thread())
        .wait();
    assert!(summary.all_delivered());
    assert_eq!(summary.nodes, vec![NodeId(0)]);
    handle.join().unwrap();
}

#[test]
fn io_hub_collects_per_channel() {
    let cluster = Cluster::new(1);
    cluster.io().emit("a", "1");
    cluster.io().emit("b", "2");
    cluster.io().emit("a", "3");
    assert_eq!(cluster.io().lines("a"), vec!["1", "3"]);
    assert_eq!(cluster.io().lines("b"), vec!["2"]);
    assert!(cluster.io().lines("c").is_empty());
}

#[test]
fn objects_persist_across_cluster_incarnations() {
    // §3.1: objects are persistent. Export images, "reboot" into a fresh
    // cluster, import, and the state (and ids) survive.
    let images = {
        let cluster = Cluster::new(2);
        register_chain_class(&cluster);
        let counter = cluster
            .create_object(ObjectConfig::new("counter", NodeId(1)))
            .unwrap();
        for _ in 0..7 {
            cluster
                .spawn(0, counter, "bump", Value::Null)
                .unwrap()
                .join()
                .unwrap();
        }
        let images = cluster.export_objects().unwrap();
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].id, counter);
        images
    }; // old cluster shut down here

    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    cluster.import_objects(&images).unwrap();
    let counter = images[0].id;
    // State survived the reboot.
    let n = cluster
        .spawn(0, counter, "get", Value::Null)
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(n, Value::Int(7));
    // The object is live: further invocations work.
    let n = cluster
        .spawn(1, counter, "bump", Value::Null)
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(n, Value::Int(8));
    // New objects do not collide with imported ids.
    let fresh = cluster
        .create_object(ObjectConfig::new("counter", NodeId(1)))
        .unwrap();
    assert_ne!(fresh, counter);
}

#[test]
fn import_rejects_unknown_class() {
    let images = {
        let cluster = Cluster::new(1);
        register_chain_class(&cluster);
        cluster
            .create_object(ObjectConfig::new("counter", NodeId(0)))
            .unwrap();
        cluster.export_objects().unwrap()
    };
    let cluster = Cluster::new(1); // counter class NOT registered
    let r = cluster.import_objects(&images);
    assert!(matches!(r, Err(KernelError::UnknownClass(_))), "{r:?}");
}

#[test]
fn try_claim_is_nonblocking() {
    let cluster = Cluster::new(2);
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            let child = ctx.invoke_async(far, "sleepy", Value::Int(150));
            assert!(child.try_claim().is_none(), "child still running");
            let r = child.claim()?;
            Ok(r)
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), Value::Str("woke".into()));
}

#[test]
fn terminate_group_drains_busy_members() {
    let cluster = Cluster::new(3);
    register_chain_class(&cluster);
    let objs = chain_objects(&cluster, &[1, 2]);
    let group = cluster.create_group();
    let mut handles = Vec::new();
    for i in 0..6 {
        let objs = objs.clone();
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        handles.push(
            cluster
                .spawn_fn_with(i % 3, opts, move |ctx| loop {
                    // Constantly moving between nodes: a single QUIT wave
                    // can miss these.
                    ctx.invoke(objs[0], "where", Value::Null)?;
                    ctx.invoke(objs[1], "where", Value::Null)?;
                })
                .unwrap(),
        );
    }
    std::thread::sleep(Duration::from_millis(100));
    assert!(cluster.terminate_group(group, Duration::from_secs(20)));
    for h in handles {
        let r = h.join_timeout(Duration::from_secs(10)).expect("drained");
        assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    }
    assert!(cluster.await_quiescence(Duration::from_secs(10)));
}

// ---------------------------------------------------------------------
// Reliability layer: acked/retried transport + failure detector wired
// through the kernel's remote paths.
// ---------------------------------------------------------------------

use doct_net::{FailureConfig, ReliabilityConfig};

fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        max_retries: 60,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: Duration::from_millis(2),
        tick: Duration::from_millis(2),
        heartbeat_interval: Duration::from_millis(5),
        dedupe_window: 1024,
        ..ReliabilityConfig::default()
    }
}

#[test]
fn reliable_invocation_survives_a_transient_partition() {
    // A partition shorter than the retransmit tail must be invisible to
    // the caller: the queued Invoke is retransmitted after heal and the
    // call completes. Use a patient failure detector so the peer is not
    // declared dead while the link is down.
    let cluster = ClusterBuilder::new(2)
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    cluster.net().set_link(NodeId(0), NodeId(1), false).unwrap();
    let handle = cluster.spawn(0, far, "where", Value::Null).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    cluster.net().heal();
    let r = handle.join_timeout(Duration::from_secs(10)).expect("done");
    assert_eq!(r.unwrap(), Value::Int(1), "retransmit carried the call");
    assert!(cluster.net().stats().retransmits() > 0);
    // ACKs are coalesced by the maintenance thread, so the reply can land
    // before the first ACK message goes out — wait briefly instead of
    // sampling the counter at one instant.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cluster.net().stats().acks() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cluster.net().stats().acks() > 0);
}

#[test]
fn detector_fails_remote_invocation_fast_on_dead_peer() {
    // With the failure detector on, a call into a partitioned node fails
    // with NodeUnreachable once the peer is declared dead — far sooner
    // than the 30s invoke timeout.
    let cluster = ClusterBuilder::new(2)
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(40),
                dead_after: Duration::from_millis(120),
            },
        )
        .build();
    register_chain_class(&cluster);
    let far = chain_objects(&cluster, &[1])[0];
    // Let heartbeats establish liveness first.
    std::thread::sleep(Duration::from_millis(50));
    cluster.net().isolate(&[NodeId(1)]).unwrap();
    let start = std::time::Instant::now();
    let r = cluster.spawn(0, far, "where", Value::Null).unwrap().join();
    assert!(
        matches!(r, Err(KernelError::NodeUnreachable(NodeId(1)))),
        "{r:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "detector verdict must beat the invoke timeout ({:?})",
        start.elapsed()
    );
    cluster.net().heal();
}

#[test]
fn detector_resolves_thread_delivery_as_dead_during_partition() {
    // §7.2 dead-target notification under real link failure: an event
    // raised at a thread whose root node is unreachable resolves as
    // TargetDead via the detector instead of burning the full delivery
    // timeout.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(20),
            ..KernelConfig::default()
        })
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(40),
                dead_after: Duration::from_millis(120),
            },
        )
        .build();
    register_chain_class(&cluster);
    let obj = chain_objects(&cluster, &[1])[0];
    let handle = cluster.spawn(1, obj, "sleepy", Value::Int(2_000)).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    cluster.net().isolate(&[NodeId(1)]).unwrap();
    // Wait out the detector's dead_after so the sweep has a verdict.
    std::thread::sleep(Duration::from_millis(300));
    let start = std::time::Instant::now();
    let summary = cluster
        .raise_from(0, SystemEvent::Timer, Value::Null, handle.thread())
        .wait();
    assert_eq!(summary.delivered, 0, "{summary:?}");
    assert_eq!(
        summary.dead, 1,
        "detector must report TargetDead: {summary:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "resolution must not wait out the 20s delivery timeout"
    );
    cluster.net().heal();
    let _ = handle.join_timeout(Duration::from_secs(10));
}
