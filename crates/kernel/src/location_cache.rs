//! Per-node thread-location hint cache: the last node each thread was
//! observed at, used by the event router to replace a full §7.1 locator
//! wave (broadcast / root-anchored path trace / multicast) with a single
//! unicast probe when the target has not moved since the previous raise.
//!
//! The cache is purely a *hint*: a wrong entry costs one misdirected
//! probe (answered "not here", which invalidates the entry and falls back
//! to the configured [`crate::LocatorStrategy`]); it can never cause a
//! missed or duplicated delivery because the existing probe/receipt
//! machinery and the per-thread seen ring already tolerate duplicate and
//! misdirected probes.
//!
//! Entries carry a *generation* stamp so that a disproof ("not here")
//! only removes the entry it actually probed: a concurrent delivery that
//! re-learned a fresher location is never clobbered by a stale receipt.

use crate::ThreadId;
use doct_net::NodeId;
use doct_telemetry::{Counter, Registry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of independently locked shards. Raises on different threads hash
/// to different shards, so the read-mostly hot path rarely contends.
const SHARDS: usize = 16;

/// Tuning for the per-node thread-location hint cache
/// ([`crate::KernelConfig::location_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationCacheConfig {
    /// Consult the cache before the configured locator strategy.
    pub enabled: bool,
    /// Maximum cached entries across the whole node (LRU beyond this).
    pub capacity: usize,
    /// How long a unicast hint probe may stay unanswered before the
    /// delivery gives up on it and falls back to the full locator wave.
    pub hint_timeout: Duration,
}

impl Default for LocationCacheConfig {
    fn default() -> Self {
        LocationCacheConfig {
            enabled: true,
            capacity: 4096,
            hint_timeout: Duration::from_millis(100),
        }
    }
}

impl LocationCacheConfig {
    /// A disabled cache (every raise pays the full locator cost).
    pub fn disabled() -> Self {
        LocationCacheConfig {
            enabled: false,
            ..Self::default()
        }
    }
}

#[derive(Debug)]
struct Entry {
    node: NodeId,
    generation: u64,
    /// LRU clock value of the last lookup or insert (relaxed; approximate
    /// recency is all the eviction policy needs).
    last_used: AtomicU64,
}

/// Sharded, bounded, read-mostly map `ThreadId → (NodeId, generation)`.
///
/// All four `locator.cache_*` telemetry counters live here so hit rates
/// are observable in the same snapshots as the delivery ledger.
#[derive(Debug)]
pub struct LocationCache {
    shards: Vec<RwLock<HashMap<ThreadId, Entry>>>,
    per_shard_cap: usize,
    /// Shared LRU clock and generation source.
    clock: AtomicU64,
    config: LocationCacheConfig,
    /// Unicast fast paths taken (`locator.cache_hits`).
    pub hits: Counter,
    /// Lookups that found no entry (`locator.cache_misses`).
    pub misses: Counter,
    /// Hints disproved by a "not here" receipt or a hint timeout
    /// (`locator.cache_stale`).
    pub stale: Counter,
    /// Entries dropped by LRU pressure, explicit invalidation (thread
    /// termination), or a detector-dead hinted node
    /// (`locator.cache_evictions`).
    pub evictions: Counter,
}

impl LocationCache {
    /// Cache with counters bound to `registry`'s `locator.*` series.
    pub fn new(config: LocationCacheConfig, registry: &Registry) -> Self {
        let per_shard_cap = (config.capacity / SHARDS).max(1);
        LocationCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_cap,
            clock: AtomicU64::new(1),
            config,
            hits: registry.counter("locator.cache_hits"),
            misses: registry.counter("locator.cache_misses"),
            stale: registry.counter("locator.cache_stale"),
            evictions: registry.counter("locator.cache_evictions"),
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> LocationCacheConfig {
        self.config
    }

    fn shard(&self, thread: ThreadId) -> &RwLock<HashMap<ThreadId, Entry>> {
        // ThreadId is (root node, sequence): mix both so threads rooted on
        // one busy node still spread across shards.
        let h = (thread.root.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(thread.seq as u64);
        &self.shards[(h % SHARDS as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Last known location of `thread`, if cached, with the entry's
    /// generation (pass it back to [`LocationCache::invalidate_stale`] so a
    /// later disproof cannot clobber a fresher entry). Counts a hit or a
    /// miss.
    pub fn lookup(&self, thread: ThreadId) -> Option<(NodeId, u64)> {
        let found = {
            let shard = self.shard(thread).read();
            shard.get(&thread).map(|e| {
                e.last_used.store(self.tick(), Ordering::Relaxed);
                (e.node, e.generation)
            })
        };
        match found {
            Some(hit) => {
                self.hits.inc();
                Some(hit)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Non-counting lookup for diagnostics and tests.
    pub fn peek(&self, thread: ThreadId) -> Option<NodeId> {
        self.shard(thread).read().get(&thread).map(|e| e.node)
    }

    /// Record a confirmed delivery of an event for `thread` at `node`
    /// (from a delivery receipt or anchor confirmation). Overwrites any
    /// previous hint; evicts the least-recently-used entry of the shard
    /// when it is full.
    pub fn record(&self, thread: ThreadId, node: NodeId) {
        let stamp = self.tick();
        let mut shard = self.shard(thread).write();
        if !shard.contains_key(&thread) && shard.len() >= self.per_shard_cap {
            if let Some(&victim) = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(t, _)| t)
            {
                shard.remove(&victim);
                self.evictions.inc();
            }
        }
        shard.insert(
            thread,
            Entry {
                node,
                generation: stamp,
                last_used: AtomicU64::new(stamp),
            },
        );
    }

    /// A hint probe for `thread` came back "not here" (or timed out):
    /// drop the entry — but only if it is still the `generation` that was
    /// probed, so a fresher concurrently-recorded location survives.
    /// Counts `locator.cache_stale`.
    pub fn invalidate_stale(&self, thread: ThreadId, generation: u64) {
        self.stale.inc();
        let mut shard = self.shard(thread).write();
        if shard
            .get(&thread)
            .is_some_and(|e| e.generation == generation)
        {
            shard.remove(&thread);
        }
    }

    /// Drop whatever is cached for `thread` (thread terminated, or its
    /// hinted node was declared dead by the failure detector). Counts an
    /// eviction when an entry existed.
    pub fn invalidate(&self, thread: ThreadId) {
        if self.shard(thread).write().remove(&thread).is_some() {
            self.evictions.inc();
        }
    }

    /// Number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doct_telemetry::Registry;

    fn cache(capacity: usize) -> LocationCache {
        LocationCache::new(
            LocationCacheConfig {
                enabled: true,
                capacity,
                hint_timeout: Duration::from_millis(100),
            },
            &Registry::new(),
        )
    }

    fn t(root: u32, seq: u32) -> ThreadId {
        ThreadId::new(NodeId(root), seq)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let c = cache(64);
        assert_eq!(c.lookup(t(0, 1)), None);
        assert_eq!(c.misses.get(), 1);
        c.record(t(0, 1), NodeId(3));
        let (node, _gen) = c.lookup(t(0, 1)).expect("hit");
        assert_eq!(node, NodeId(3));
        assert_eq!(c.hits.get(), 1);
    }

    #[test]
    fn record_overwrites_with_new_generation() {
        let c = cache(64);
        c.record(t(0, 1), NodeId(1));
        let (_, g1) = c.lookup(t(0, 1)).unwrap();
        c.record(t(0, 1), NodeId(2));
        let (node, g2) = c.lookup(t(0, 1)).unwrap();
        assert_eq!(node, NodeId(2));
        assert!(g2 > g1, "each record gets a fresh generation");
    }

    #[test]
    fn stale_invalidation_respects_generation() {
        let c = cache(64);
        c.record(t(0, 1), NodeId(1));
        let (_, old_gen) = c.lookup(t(0, 1)).unwrap();
        // A fresher location lands before the old hint is disproved.
        c.record(t(0, 1), NodeId(2));
        c.invalidate_stale(t(0, 1), old_gen);
        assert_eq!(
            c.peek(t(0, 1)),
            Some(NodeId(2)),
            "disproof of an old generation must not clobber the fresh entry"
        );
        assert_eq!(c.stale.get(), 1);
        // Disproving the current generation does remove it.
        let (_, cur) = c.lookup(t(0, 1)).unwrap();
        c.invalidate_stale(t(0, 1), cur);
        assert_eq!(c.peek(t(0, 1)), None);
    }

    #[test]
    fn invalidate_counts_only_real_removals() {
        let c = cache(64);
        c.invalidate(t(0, 9));
        assert_eq!(c.evictions.get(), 0);
        c.record(t(0, 9), NodeId(1));
        c.invalidate(t(0, 9));
        assert_eq!(c.evictions.get(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_bounded_by_lru_eviction() {
        // capacity 16 → 1 entry per shard: any second thread landing in
        // an occupied shard evicts the older entry.
        let c = cache(16);
        for seq in 0..200 {
            c.record(t(0, seq), NodeId(1));
        }
        assert!(c.len() <= 16, "len {} exceeds capacity", c.len());
        assert!(c.evictions.get() >= 200 - 16);
    }

    #[test]
    fn lru_keeps_the_recently_used_entry() {
        let c = cache(SHARDS); // one slot per shard
                               // Find two threads that share a shard.
        let a = t(0, 1);
        let mut b = t(0, 2);
        for seq in 2..500 {
            b = t(0, seq);
            if std::ptr::eq(c.shard(a), c.shard(b)) {
                break;
            }
        }
        assert!(std::ptr::eq(c.shard(a), c.shard(b)), "no shard collision");
        c.record(a, NodeId(1));
        c.record(b, NodeId(2)); // evicts a (only slot in the shard)
        assert_eq!(c.peek(a), None);
        assert_eq!(c.peek(b), Some(NodeId(2)));
    }
}
