//! Cluster-wide kernel configuration knobs, each corresponding to a design
//! alternative discussed in the paper.

use crate::location_cache::LocationCacheConfig;
use crate::mailbox::MailboxConfig;
use std::time::Duration;

/// How object invocations cross node boundaries (paper §2 design goal:
/// "the mechanism works identically regardless of whether the objects are
/// invoked using RPC or DSM" — experiment E8 verifies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvocationMode {
    /// The logical thread moves: an invocation message carries the thread
    /// (attributes and all) to the object's home node, which executes the
    /// entry and replies.
    #[default]
    Rpc,
    /// The data moves: the entry executes on the caller's node and the
    /// object's state pages fault across via DSM.
    Dsm,
}

/// How a thread is found when an event is posted to it (paper §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocatorStrategy {
    /// "A simple solution ... broadcast the event request": probe every
    /// node; each answers found/not-found. 2(n-1) messages.
    Broadcast,
    /// "Follow the path of the thread starting from its root node" using
    /// thread-control blocks: hop along the invocation chain. ≤ hops + 1
    /// messages.
    #[default]
    PathTrace,
    /// "Threads can create a multicast group": nodes hosting the thread
    /// join its group; delivery multicasts to current members.
    Multicast,
}

/// How object-targeted events are executed at the home node (paper §4.3:
/// "a handler thread can be associated with the object to handle all
/// events on its behalf, thus eliminating thread-creation costs" —
/// experiment E3 measures the difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectEventExecution {
    /// Spawn a fresh kernel thread per delivered event.
    Spawn,
    /// One long-lived master handler thread per node drains a queue.
    #[default]
    Master,
}

/// Which transport fabric carries inter-node kernel messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricChoice {
    /// The in-process simulated fabric (delay-line latency injection,
    /// deterministic, no serialization).
    #[default]
    Sim,
    /// Real loopback UDP sockets: every message is encoded to a datagram
    /// and decoded on receive, heartbeats are real probe datagrams, and
    /// the cluster can span OS processes (the `doct-node` binary).
    Udp,
}

/// Kernel configuration, shared by every node of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// RPC or DSM invocations.
    pub invocation_mode: InvocationMode,
    /// Thread location strategy for event delivery.
    pub locator: LocatorStrategy,
    /// Object event execution policy.
    pub object_events: ObjectEventExecution,
    /// How long the raiser's node waits for a delivery receipt.
    pub delivery_timeout: Duration,
    /// Retries after a `not found` receipt (covers thread-movement races).
    pub delivery_retries: u32,
    /// How long `raise_and_wait` blocks for a handler to resume the raiser.
    pub sync_timeout: Duration,
    /// How long a remote invocation waits for its reply.
    pub invoke_timeout: Duration,
    /// Thread-location hint cache consulted before `locator` on each
    /// thread-targeted raise (unicast fast path; see `LocationCache`).
    pub location_cache: LocationCacheConfig,
    /// Bounded priority-mailbox policy applied to every activation
    /// (overload control: control lane never sheds, timer/user lanes
    /// bounded; see `Mailbox`).
    pub mailbox: MailboxConfig,
    /// Reactor workers per node. At 1 (the default) the kernel loop
    /// handles messages inline, exactly as before; above 1 it becomes a
    /// router feeding that many work-stealing reactor loops, with the
    /// delivery table's shards swept `shard % reactors`-owned. The
    /// `DOCT_REACTORS` environment variable overrides this cluster-wide
    /// (see [`KernelConfig::effective_reactors`]).
    pub reactors: usize,
    /// Transport fabric for inter-node messages. The `DOCT_FABRIC`
    /// environment variable (`sim` | `udp`) overrides this cluster-wide
    /// (see [`KernelConfig::effective_fabric`]), which is how the E11
    /// suite and the chaos-soak matrix flip a whole run onto real
    /// sockets without touching each test's builder.
    pub fabric: FabricChoice,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            invocation_mode: InvocationMode::default(),
            locator: LocatorStrategy::default(),
            object_events: ObjectEventExecution::default(),
            delivery_timeout: Duration::from_secs(5),
            delivery_retries: 3,
            sync_timeout: Duration::from_secs(10),
            invoke_timeout: Duration::from_secs(30),
            location_cache: LocationCacheConfig::default(),
            mailbox: MailboxConfig::default(),
            reactors: 1,
            fabric: FabricChoice::default(),
        }
    }
}

impl KernelConfig {
    /// Default config with the given invocation mode.
    pub fn with_mode(mode: InvocationMode) -> Self {
        KernelConfig {
            invocation_mode: mode,
            ..Self::default()
        }
    }

    /// Default config with the given locator.
    pub fn with_locator(locator: LocatorStrategy) -> Self {
        KernelConfig {
            locator,
            ..Self::default()
        }
    }

    /// This config with the location hint cache turned off (every raise
    /// pays the full locator cost — used by the E2 baseline benches).
    pub fn without_location_cache(self) -> Self {
        KernelConfig {
            location_cache: LocationCacheConfig::disabled(),
            ..self
        }
    }

    /// This config with the given location-cache tuning.
    pub fn with_location_cache(self, location_cache: LocationCacheConfig) -> Self {
        KernelConfig {
            location_cache,
            ..self
        }
    }

    /// This config with the given mailbox bounds (E13 uses tiny lanes to
    /// force shedding at modest arrival rates).
    pub fn with_mailbox(self, mailbox: MailboxConfig) -> Self {
        KernelConfig { mailbox, ..self }
    }

    /// This config with the given reactor count (E14 sweeps 1/2/4/8).
    pub fn with_reactors(self, reactors: usize) -> Self {
        KernelConfig {
            reactors: reactors.max(1),
            ..self
        }
    }

    /// The reactor count a kernel should actually run: the configured
    /// value unless the `DOCT_REACTORS` environment variable overrides it
    /// (the chaos-soak matrix uses this to re-run the whole suite
    /// multi-reactor without touching each test's builder).
    pub fn effective_reactors(&self) -> usize {
        std::env::var("DOCT_REACTORS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.reactors)
            .max(1)
    }

    /// This config with the given transport fabric.
    pub fn with_fabric(self, fabric: FabricChoice) -> Self {
        KernelConfig { fabric, ..self }
    }

    /// The fabric a cluster should actually ride: the configured value
    /// unless the `DOCT_FABRIC` environment variable overrides it
    /// (`sim` or `udp`; anything else is ignored).
    pub fn effective_fabric(&self) -> FabricChoice {
        match std::env::var("DOCT_FABRIC").as_deref() {
            Ok("sim") => FabricChoice::Sim,
            Ok("udp") => FabricChoice::Udp,
            _ => self.fabric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_preferred_choices() {
        let c = KernelConfig::default();
        assert_eq!(c.invocation_mode, InvocationMode::Rpc);
        assert_eq!(c.locator, LocatorStrategy::PathTrace);
        assert_eq!(c.object_events, ObjectEventExecution::Master);
        assert!(c.delivery_retries > 0);
        assert!(c.location_cache.enabled, "hint cache is on by default");
        assert!(c.location_cache.capacity > 0);
        assert!(c.location_cache.hint_timeout < c.delivery_timeout);
        assert!(c.mailbox.timer_capacity > 0 && c.mailbox.user_capacity > 0);
        assert!(
            c.mailbox.near_deadline < c.mailbox.timer_deadline,
            "the jump window must be narrower than the usefulness horizon"
        );
        assert!(c.mailbox.backpressure_hold < c.delivery_timeout);
        assert_eq!(c.reactors, 1, "inline handling is the default");
    }

    #[test]
    fn builder_shortcuts() {
        assert_eq!(
            KernelConfig::with_mode(InvocationMode::Dsm).invocation_mode,
            InvocationMode::Dsm
        );
        assert_eq!(
            KernelConfig::with_locator(LocatorStrategy::Broadcast).locator,
            LocatorStrategy::Broadcast
        );
        let off = KernelConfig::default().without_location_cache();
        assert!(!off.location_cache.enabled);
        assert_eq!(off.locator, LocatorStrategy::PathTrace, "rest untouched");
        let multi = KernelConfig::default().with_reactors(4);
        assert_eq!(multi.reactors, 4);
        assert_eq!(
            KernelConfig::default().with_reactors(0).reactors,
            1,
            "zero reactors clamps to inline"
        );
    }

    #[test]
    fn fabric_defaults_to_sim_and_flips_by_builder() {
        let c = KernelConfig::default();
        assert_eq!(c.fabric, FabricChoice::Sim);
        let udp = c.with_fabric(FabricChoice::Udp);
        assert_eq!(udp.fabric, FabricChoice::Udp);
        assert_eq!(udp.locator, LocatorStrategy::PathTrace, "rest untouched");
        // Without the DOCT_FABRIC override the configured value rules.
        // (The env-var path is exercised by the E11 suite and the CI udp
        // smoke leg; setting process-wide env vars here would race with
        // parallel tests that build clusters.)
        if std::env::var("DOCT_FABRIC").is_err() {
            assert_eq!(udp.effective_fabric(), FabricChoice::Udp);
        }
    }
}
