//! Kernel-side event plumbing: names, wire representation, routing
//! targets, and the dispatcher hook through which the event *facility*
//! (the `doct-events` crate) plugs its semantics into the kernel's
//! delivery points.
//!
//! The split mirrors the paper's §8: the facility is layered on kernel
//! primitives ("thread creation, kernel threads, DSM and RPC invocations
//! and thread location facilities"); the kernel knows how to move and
//! queue events, not what handlers do.

use crate::{Ctx, ObjectId, ThreadAttributes, ThreadGroupId, ThreadId, Value};
use doct_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Predefined events raised by the operating system (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SystemEvent {
    /// Keyboard/console interrupt (the distributed ^C, §6.3).
    Interrupt,
    /// Terminate the target thread after running its cleanup chain.
    Terminate,
    /// Abort the invocation in progress in the target object (§6.3).
    Abort,
    /// Terminate unconditionally (the second phase of §6.3's protocol):
    /// no handler decision can rescue the thread and ordinary handlers do
    /// not run, though the facility still runs cleanup-marked TERMINATE
    /// handlers for their side effects so §4.2's unlock-on-death
    /// guarantee survives a hard kill.
    Quit,
    /// Periodic timer tick (§6.2).
    Timer,
    /// One-shot alarm.
    Alarm,
    /// Page fault on a user-managed segment (§6.4).
    VmFault,
    /// Arithmetic exception.
    DivZero,
    /// Object deletion notification (§5.1's example).
    Delete,
    /// Debugger breakpoint.
    Breakpoint,
}

impl SystemEvent {
    /// All system events (every object has default handlers for these).
    pub const ALL: [SystemEvent; 10] = [
        SystemEvent::Interrupt,
        SystemEvent::Terminate,
        SystemEvent::Abort,
        SystemEvent::Quit,
        SystemEvent::Timer,
        SystemEvent::Alarm,
        SystemEvent::VmFault,
        SystemEvent::DivZero,
        SystemEvent::Delete,
        SystemEvent::Breakpoint,
    ];
}

impl fmt::Display for SystemEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SystemEvent::Interrupt => "INTERRUPT",
            SystemEvent::Terminate => "TERMINATE",
            SystemEvent::Abort => "ABORT",
            SystemEvent::Quit => "QUIT",
            SystemEvent::Timer => "TIMER",
            SystemEvent::Alarm => "ALARM",
            SystemEvent::VmFault => "VM_FAULT",
            SystemEvent::DivZero => "DIV_ZERO",
            SystemEvent::Delete => "DELETE",
            SystemEvent::Breakpoint => "BREAKPOINT",
        })
    }
}

/// Name of an event: a predefined system event or an application-named
/// user event ("names such as COMMIT, ABORT, SYNCHRONIZE can be
/// registered by an application", §3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventName {
    /// Predefined by the operating system.
    System(SystemEvent),
    /// Registered by an application.
    User(String),
}

impl EventName {
    /// Convenience constructor for user events.
    pub fn user(name: impl Into<String>) -> Self {
        EventName::User(name.into())
    }

    /// Whether this is a system event.
    pub fn is_system(&self) -> bool {
        matches!(self, EventName::System(_))
    }
}

impl fmt::Display for EventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventName::System(s) => write!(f, "{s}"),
            EventName::User(u) => write!(f, "{u}"),
        }
    }
}

impl From<SystemEvent> for EventName {
    fn from(s: SystemEvent) -> Self {
        EventName::System(s)
    }
}

impl From<&str> for EventName {
    fn from(s: &str) -> Self {
        EventName::user(s)
    }
}

/// Priority lane of an event in a bounded per-thread mailbox (overload
/// control; ROADMAP item 5). Classification is by event *name*, so the
/// raiser's node and the delivering node always agree:
///
/// * [`Lane::Control`] — every system event except TIMER/ALARM.
///   TERMINATE/QUIT and their kin preempt ordinary traffic and are
///   **never shed**: admission control must not be able to cancel a
///   kill, or §6.3's teardown protocol loses its liveness guarantee.
/// * [`Lane::Timer`] — TIMER and ALARM ticks, ordered by deadline; a
///   near-deadline timer jumps the USER lane (deadline-aware dispatch).
///   Sheddable: a lost tick is superseded by the next one.
/// * [`Lane::User`] — application-registered events, FIFO. Sheddable:
///   the raiser is told via [`DeliveryStatus::Overloaded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// System control events; unbounded, never shed, always first.
    Control,
    /// TIMER/ALARM ticks; bounded, deadline-ordered.
    Timer,
    /// Application events; bounded, FIFO.
    User,
}

impl Lane {
    /// The lane `name` travels in.
    pub fn classify(name: &EventName) -> Lane {
        match name {
            EventName::System(SystemEvent::Timer) | EventName::System(SystemEvent::Alarm) => {
                Lane::Timer
            }
            EventName::System(_) => Lane::Control,
            EventName::User(_) => Lane::User,
        }
    }

    /// Whether admission control may shed events in this lane.
    pub fn sheddable(self) -> bool {
        self != Lane::Control
    }

    /// Stable lower-case label for telemetry counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Control => "control",
            Lane::Timer => "timer",
            Lane::User => "user",
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where an event is directed (the §5.3 addressing options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaiseTarget {
    /// A specific thread (`raise(e, tid)`).
    Thread(ThreadId),
    /// Every member of a thread group (`raise(e, gtid)`).
    Group(ThreadGroupId),
    /// A (possibly passive) object (`raise(e, oid)`).
    Object(ObjectId),
}

impl From<ThreadId> for RaiseTarget {
    fn from(t: ThreadId) -> Self {
        RaiseTarget::Thread(t)
    }
}
impl From<ThreadGroupId> for RaiseTarget {
    fn from(g: ThreadGroupId) -> Self {
        RaiseTarget::Group(g)
    }
}
impl From<ObjectId> for RaiseTarget {
    fn from(o: ObjectId) -> Self {
        RaiseTarget::Object(o)
    }
}

/// An event instance in flight.
///
/// The attribute snapshot may carry per-thread handler procedures
/// (closures); the simulated cluster ships them in-process, modelling the
/// mapping of per-thread memory (§7.2). On the real-socket UDP fabric the
/// wire codec ([`crate::wire`], DESIGN.md §3i) encodes the portable slice
/// of the snapshot and drops closure-typed extensions at the boundary.
#[derive(Debug, Clone)]
pub struct WireEvent {
    /// Event name.
    pub name: EventName,
    /// User payload (appended to the event block, §5.1).
    pub payload: Value,
    /// Raising thread, if raised from a thread context.
    pub raiser: Option<ThreadId>,
    /// Node where the raise happened.
    pub raiser_node: NodeId,
    /// Cluster-unique event instance id (rendezvous key for synchronous
    /// raises).
    pub seq: u64,
    /// True if the raiser blocked in `raise_and_wait` and must be resumed
    /// by a handler.
    pub sync: bool,
    /// Telemetry timestamp of the raise (ns since the cluster telemetry
    /// epoch); the delivery point subtracts it from "now" for the
    /// raise-to-deliver latency histogram.
    pub t_raise_ns: u64,
    /// Snapshot of the raiser's attributes, for surrogate-thread handling
    /// (§6.1).
    pub attrs: Option<ThreadAttributes>,
    /// Usefulness deadline for timer-lane events (ns on the telemetry
    /// epoch, stamped at raise): the bounded mailbox orders the TIMER
    /// lane by it and lets a near-deadline tick jump the USER lane.
    /// `None` for control/user events.
    pub deadline_ns: Option<u64>,
}

impl WireEvent {
    /// Estimated wire size for statistics.
    pub fn wire_size(&self) -> usize {
        96 + self.payload.wire_size()
    }
}

/// What the kernel should do with the interrupted thread once the facility
/// finished handling a delivered event ("the suspended thread is resumed
/// or terminated", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadDisposition {
    /// Resume the thread where it was interrupted.
    Resume,
    /// Unwind and terminate the thread.
    Terminate,
}

/// Final status of a raise, as observed by the raiser's node.
#[must_use = "a discarded status hides dead-target and timeout outcomes"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Delivered; the responding node is reported.
    Delivered(NodeId),
    /// The target thread no longer exists (§7.2: "the sender of the event
    /// ... needs to be notified").
    TargetDead,
    /// No response within the delivery timeout.
    Timeout,
    /// The tracking kernel went away before any verdict arrived (node
    /// shutdown mid-raise). Distinct from [`DeliveryStatus::Timeout`] so
    /// the delivery ledger can attribute the loss honestly.
    Lost,
    /// Admission control shed the raise: the reported node's bounded
    /// mailbox was full in the event's (sheddable) lane, or the sender
    /// shed at the source because that peer signalled backpressure.
    /// Typed, never silent — the ledger invariant becomes
    /// `requested = delivered + dead + timeout + lost + overloaded`.
    Overloaded(NodeId),
}

/// The event facility's hook into kernel delivery points.
///
/// `doct-events` implements this; [`DefaultDispatcher`] supplies the bare
/// kernel defaults when no facility is installed.
pub trait EventDispatcher: Send + Sync {
    /// An event reached the thread currently executing under `ctx`
    /// (invocation boundary, explicit poll, or interrupted blocking
    /// operation). Runs handlers synchronously and returns the
    /// disposition for the interrupted thread.
    fn deliver_to_thread(&self, ctx: &mut Ctx, event: WireEvent) -> ThreadDisposition;

    /// An event reached a (possibly passive) object. `ctx` runs on a
    /// kernel-provided thread (master handler thread or a spawned one,
    /// §4.3) with the raiser's attribute snapshot if one travelled.
    fn deliver_to_object(&self, ctx: &mut Ctx, object: ObjectId, event: WireEvent);
}

/// Kernel default semantics with no facility installed: `TERMINATE` and
/// `QUIT` terminate the thread, everything else is dropped; object events
/// are dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultDispatcher;

impl EventDispatcher for DefaultDispatcher {
    fn deliver_to_thread(&self, ctx: &mut Ctx, event: WireEvent) -> ThreadDisposition {
        // Never leave a synchronous raiser blocked: with no handler to
        // resume it, the kernel default resumes with Null.
        if event.sync {
            ctx.resume_raiser(&event, Value::Null);
        }
        match event.name {
            EventName::System(SystemEvent::Terminate) | EventName::System(SystemEvent::Quit) => {
                ThreadDisposition::Terminate
            }
            _ => ThreadDisposition::Resume,
        }
    }

    fn deliver_to_object(&self, ctx: &mut Ctx, _object: ObjectId, event: WireEvent) {
        if event.sync {
            ctx.resume_raiser(&event, Value::Null);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_display_like_the_paper() {
        assert_eq!(
            EventName::from(SystemEvent::VmFault).to_string(),
            "VM_FAULT"
        );
        assert_eq!(EventName::user("COMMIT").to_string(), "COMMIT");
        assert!(EventName::System(SystemEvent::Timer).is_system());
        assert!(!EventName::user("COMMIT").is_system());
    }

    #[test]
    fn all_system_events_have_distinct_names() {
        let mut names: Vec<String> = SystemEvent::ALL.iter().map(|e| e.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), SystemEvent::ALL.len());
    }

    #[test]
    fn raise_target_conversions() {
        let t = ThreadId::new(NodeId(0), 1);
        assert_eq!(RaiseTarget::from(t), RaiseTarget::Thread(t));
        let o = ObjectId::new(NodeId(0), 1);
        assert_eq!(RaiseTarget::from(o), RaiseTarget::Object(o));
        let g = ThreadGroupId::new(NodeId(0), 1);
        assert_eq!(RaiseTarget::from(g), RaiseTarget::Group(g));
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = WireEvent {
            name: EventName::System(SystemEvent::Timer),
            payload: Value::Null,
            raiser: None,
            raiser_node: NodeId(0),
            seq: 1,
            sync: false,
            t_raise_ns: 0,
            attrs: None,
            deadline_ns: None,
        };
        let big = WireEvent {
            payload: Value::from(vec![0u8; 1000]),
            ..small.clone()
        };
        assert!(big.wire_size() > small.wire_size() + 900);
    }

    #[test]
    fn lanes_classify_by_name_and_only_control_is_unsheddable() {
        for s in SystemEvent::ALL {
            let lane = Lane::classify(&EventName::System(s));
            match s {
                SystemEvent::Timer | SystemEvent::Alarm => assert_eq!(lane, Lane::Timer),
                _ => assert_eq!(lane, Lane::Control, "{s} must ride the control lane"),
            }
        }
        assert_eq!(Lane::classify(&EventName::user("COMMIT")), Lane::User);
        assert!(!Lane::Control.sheddable());
        assert!(Lane::Timer.sheddable());
        assert!(Lane::User.sheddable());
        assert_eq!(Lane::Timer.to_string(), "timer");
    }
}
