//! The per-node kernel: mailbox loop, invocation workers, event routing
//! (with the three §7.1 thread locators), and object-event execution
//! (master handler thread or spawn-per-event, §4.3).

use crate::activation::Activation;
use crate::config::{KernelConfig, LocatorStrategy, ObjectEventExecution};
use crate::location_cache::LocationCache;
use crate::message::ReceiptVerdict;
use crate::reactor::StealQueue;
use crate::shard_table::{shard_of, Insert, ShardedTable};
use crate::tcb::{TcbTable, Trail};
use crate::{ClassRegistry, DefaultDispatcher};
use crate::{
    Ctx, DeliveryStatus, EventDispatcher, EventName, GroupRegistry, KernelError, KernelMessage,
    Lane, ObjectDirectory, ObjectId, RaiseTarget, ThreadAttributes, ThreadId, Value, WireEvent,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use doct_dsm::{DsmMessage, DsmNode, DsmTransport};
use doct_net::{MessageClass, Network, NodeId};
use doct_telemetry::{Gauge, RaiseVariant, Stage, Telemetry};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated console/terminal output, keyed by I/O channel name. A thread
/// carries its channel in its attributes, so output from *any* object it
/// visits lands in the right place (paper §3.1's `foo`/`bar` example).
#[derive(Debug, Default)]
pub struct IoHub {
    channels: Mutex<HashMap<String, Vec<String>>>,
}

impl IoHub {
    /// Fresh hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a line to `channel`.
    pub fn emit(&self, channel: &str, line: impl Into<String>) {
        self.channels
            .lock()
            .entry(channel.to_string())
            .or_default()
            .push(line.into());
    }

    /// All lines written to `channel` so far.
    pub fn lines(&self, channel: &str) -> Vec<String> {
        self.channels
            .lock()
            .get(channel)
            .cloned()
            .unwrap_or_default()
    }
}

/// Per-node kernel statistics.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Invocations executed on this node.
    pub local_invocations: AtomicU64,
    /// Invocation requests sent to other nodes.
    pub remote_invocations: AtomicU64,
    /// Events enqueued for threads on this node.
    pub thread_events: AtomicU64,
    /// Object events executed by a spawned thread.
    pub object_events_spawned: AtomicU64,
    /// Object events executed by the master handler thread.
    pub object_events_master: AtomicU64,
}

/// Reply channel for one in-flight remote invocation: the entry result
/// plus the thread's attributes coming home.
type InvokeReplySender = Sender<(Result<Value, KernelError>, ThreadAttributes)>;

/// One in-flight remote invocation: its reply channel and the peer it is
/// waiting on, so the death watcher can fail every call to a dead node by
/// dropping the senders (the callers' `recv` wakes with `Disconnected`).
struct PendingCall {
    tx: InvokeReplySender,
    home: NodeId,
}

struct DeliveryTracker {
    event: WireEvent,
    target: ThreadId,
    outstanding: usize,
    attempts_left: u32,
    /// Set once the final anchor attempt has been sent.
    anchored: bool,
    deadline: Instant,
    /// An outstanding unicast hint probe: the hinted node, the cache
    /// generation that was probed (so only that entry is invalidated on
    /// disproof), and the deadline after which the delivery stops waiting
    /// for the hint and falls back to the full locator wave.
    hint: Option<(NodeId, u64, Instant)>,
    /// The hint fast path has been tried for this delivery; retries go
    /// straight to the locator wave.
    hint_spent: bool,
    result_tx: Sender<DeliveryStatus>,
}

/// A pending receipt set for one raise; resolves to a
/// [`DeliverySummary`].
#[must_use = "receipts resolve asynchronously: wait() for the summary or detach() explicitly"]
#[derive(Debug)]
pub struct RaiseTicket {
    receivers: Vec<Receiver<DeliveryStatus>>,
    timeout: Duration,
}

/// Aggregate outcome of a raise (one entry per targeted thread; objects
/// resolve to a single entry).
#[must_use = "the summary is the only record of dead/timed-out/lost recipients"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliverySummary {
    /// Number of recipients the event reached.
    pub delivered: usize,
    /// Recipients that no longer exist (§7.2 dead-target notification).
    pub dead: usize,
    /// Recipients whose receipt never arrived.
    pub timed_out: usize,
    /// Recipients whose tracking kernel vanished before resolving the
    /// receipt (node shutdown mid-raise) — not a delivery timeout.
    pub lost: usize,
    /// Recipients whose bounded mailbox shed the event (admission
    /// control said no; the raise was *not* silently dropped).
    pub overloaded: usize,
    /// Nodes where delivery happened.
    pub nodes: Vec<NodeId>,
}

impl DeliverySummary {
    /// True if every recipient got the event.
    pub fn all_delivered(&self) -> bool {
        self.dead == 0 && self.timed_out == 0 && self.lost == 0 && self.overloaded == 0
    }
}

impl RaiseTicket {
    /// Block until every receipt resolves and summarize.
    pub fn wait(self) -> DeliverySummary {
        parking_lot::lockdep::blocking_point("kernel::RaiseTicket::wait");
        let mut summary = DeliverySummary::default();
        let deadline = Instant::now() + self.timeout + Duration::from_secs(1);
        for rx in self.receivers {
            let now = Instant::now();
            let remaining = deadline.saturating_duration_since(now);
            match rx.recv_timeout(remaining) {
                Ok(DeliveryStatus::Delivered(n)) => {
                    summary.delivered += 1;
                    summary.nodes.push(n);
                }
                Ok(DeliveryStatus::TargetDead) => summary.dead += 1,
                Ok(DeliveryStatus::Timeout) => summary.timed_out += 1,
                Ok(DeliveryStatus::Overloaded(_)) => summary.overloaded += 1,
                // A disconnected receipt channel means the tracking
                // kernel is gone, not that delivery timed out.
                Ok(DeliveryStatus::Lost) | Err(_) => summary.lost += 1,
            }
        }
        summary
    }

    /// Fire-and-forget: drop the receipts.
    pub fn detach(self) {}

    /// Take the raw receipt receivers (one per targeted thread).
    pub fn into_receivers(self) -> Vec<Receiver<DeliveryStatus>> {
        self.receivers
    }

    /// Pre-resolved ticket; `timeout` is the facility's configured raise
    /// timeout so waiters on already-settled receipts behave like every
    /// other waiter.
    fn immediate(status: DeliveryStatus, timeout: Duration) -> Self {
        let (tx, rx) = bounded(1);
        let _ = tx.send(status);
        RaiseTicket {
            receivers: vec![rx],
            timeout,
        }
    }
}

struct KernelDsmTransport {
    net: Arc<Network<KernelMessage>>,
}

impl DsmTransport for KernelDsmTransport {
    fn send(&self, from: NodeId, to: NodeId, msg: DsmMessage) {
        let _ = self
            .net
            .send(from, to, KernelMessage::Dsm(msg), MessageClass::Dsm);
    }
}

/// One reactor worker's shared state: its work queue, the park/wake
/// latch the router pokes on an empty-to-nonempty transition (or to
/// invite a steal), and its `kernel.reactor_depth.*` gauge.
struct Reactor {
    queue: StealQueue<(KernelMessage, NodeId)>,
    wake_pending: Mutex<bool>,
    wake: Condvar,
    depth: Gauge,
}

impl Reactor {
    fn new(depth: Gauge) -> Self {
        Reactor {
            queue: StealQueue::new(),
            wake_pending: Mutex::new(false),
            wake: Condvar::new(),
            depth,
        }
    }

    /// Wake the worker if parked; a worker that races past the notify
    /// still sees the pending flag before it next sleeps, so the wakeup
    /// cannot be lost.
    fn wake(&self) {
        let mut pending = self.wake_pending.lock();
        *pending = true;
        self.wake.notify_one();
    }

    /// Park until woken or `deadline` (bounded at one sweep slice so
    /// shutdown is always noticed promptly).
    fn park_until(&self, deadline: Instant) {
        let mut pending = self.wake_pending.lock();
        if !*pending {
            let wait = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(50));
            let _ = self.wake.wait_for(&mut pending, wait);
        }
        *pending = false;
    }
}

/// Reactor affinity for a thread: every delivery probing one target lands
/// on one reactor (absent steals), so that thread's mailbox pushes never
/// contend across workers.
fn thread_slot(thread: ThreadId, reactors: usize) -> usize {
    let key = (u64::from(thread.root.0) << 32) | u64::from(thread.seq);
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % reactors
}

/// One node of the DO/CT cluster.
pub struct NodeKernel {
    node: NodeId,
    config: KernelConfig,
    net: Arc<Network<KernelMessage>>,
    dsm: DsmNode,
    directory: Arc<ObjectDirectory>,
    classes: Arc<ClassRegistry>,
    groups: Arc<GroupRegistry>,
    io: Arc<IoHub>,
    dispatcher: RwLock<Arc<dyn EventDispatcher>>,
    activations: Mutex<HashMap<ThreadId, (Arc<Activation>, u32)>>,
    tcbs: TcbTable,
    pending_calls: Mutex<HashMap<u64, PendingCall>>,
    deliveries: ShardedTable<DeliveryTracker>,
    /// Last known location of recently targeted threads (unicast fast
    /// path for `send_probes`); `None` when disabled by config.
    location_cache: Option<LocationCache>,
    next_id: AtomicU64,
    next_thread_seq: AtomicU64,
    next_object_seq: AtomicU64,
    object_event_tx: Sender<(ObjectId, WireEvent)>,
    object_event_rx: Mutex<Option<Receiver<(ObjectId, WireEvent)>>>,
    shutdown: AtomicBool,
    stats: KernelStats,
    telemetry: Arc<Telemetry>,
    self_ref: Mutex<Option<std::sync::Weak<NodeKernel>>>,
    timer_tx: Mutex<Option<Sender<TimerCmd>>>,
}

/// Commands for the cluster timer service (§6.2 periodic TIMER events and
/// one-shot ALARM events).
#[derive(Debug)]
pub enum TimerCmd {
    /// Register a timer for `thread`.
    Register {
        /// Target thread.
        thread: ThreadId,
        /// Timer id (for cancellation).
        id: u64,
        /// Firing period (or delay, for one-shot alarms).
        period: Duration,
        /// Payload delivered with each event.
        payload: Value,
        /// Event name to raise (TIMER for periodic, ALARM for one-shot).
        event: EventName,
        /// Fire once and unregister.
        one_shot: bool,
    },
    /// Cancel one timer.
    Cancel {
        /// Target thread.
        thread: ThreadId,
        /// Timer id.
        id: u64,
    },
    /// Cancel every timer of a (dead) thread.
    CancelThread(ThreadId),
    /// Stop the timer service.
    Shutdown,
}

impl fmt::Debug for NodeKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeKernel")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl NodeKernel {
    /// Construct a node kernel. The caller (the cluster builder) starts
    /// the kernel loop and master handler thread via
    /// [`NodeKernel::start`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        config: KernelConfig,
        net: Arc<Network<KernelMessage>>,
        directory: Arc<ObjectDirectory>,
        classes: Arc<ClassRegistry>,
        groups: Arc<GroupRegistry>,
        io: Arc<IoHub>,
        dsm_config: doct_dsm::DsmConfig,
        telemetry: Arc<Telemetry>,
    ) -> Arc<Self> {
        let transport = Arc::new(KernelDsmTransport {
            net: Arc::clone(&net),
        });
        let (oe_tx, oe_rx) = unbounded();
        let kernel = Arc::new(NodeKernel {
            node,
            config,
            dsm: DsmNode::with_stats(
                node,
                dsm_config,
                transport,
                doct_dsm::DsmNodeStats::bound(telemetry.registry(), node),
            ),
            net,
            directory,
            classes,
            groups,
            io,
            dispatcher: RwLock::new(Arc::new(DefaultDispatcher)),
            activations: Mutex::new(HashMap::new()),
            tcbs: TcbTable::new(),
            pending_calls: Mutex::new(HashMap::new()),
            deliveries: ShardedTable::new(telemetry.counter("kernel.shard_contention")),
            location_cache: config
                .location_cache
                .enabled
                .then(|| LocationCache::new(config.location_cache, telemetry.registry())),
            next_id: AtomicU64::new(1),
            next_thread_seq: AtomicU64::new(1),
            next_object_seq: AtomicU64::new(1),
            object_event_tx: oe_tx,
            object_event_rx: Mutex::new(Some(oe_rx)),
            shutdown: AtomicBool::new(false),
            stats: KernelStats::default(),
            telemetry,
            self_ref: Mutex::new(None),
            timer_tx: Mutex::new(None),
        });
        *kernel.self_ref.lock() = Some(Arc::downgrade(&kernel));
        kernel
    }

    fn me(&self) -> Arc<NodeKernel> {
        self.self_ref
            .lock()
            .as_ref()
            .and_then(|w| w.upgrade())
            .expect("kernel alive")
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Cluster configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// This node's DSM engine.
    pub fn dsm(&self) -> &DsmNode {
        &self.dsm
    }

    /// The network fabric.
    pub fn net(&self) -> &Arc<Network<KernelMessage>> {
        &self.net
    }

    /// Cluster object directory.
    pub fn directory(&self) -> &Arc<ObjectDirectory> {
        &self.directory
    }

    /// Cluster class registry.
    pub fn classes(&self) -> &Arc<ClassRegistry> {
        &self.classes
    }

    /// Cluster thread-group registry.
    pub fn groups(&self) -> &Arc<GroupRegistry> {
        &self.groups
    }

    /// Simulated console hub.
    pub fn io(&self) -> &Arc<IoHub> {
        &self.io
    }

    /// Kernel statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The cluster-shared telemetry hub (metrics + lifecycle traces).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Record one lifecycle stage of event `seq` on this node.
    fn trace(&self, seq: u64, stage: Stage) {
        self.telemetry
            .trace(seq, stage, u64::from(self.node.0), RaiseVariant::None);
    }

    /// Account one shed event at this node: the overall `kernel.shed_total`
    /// plus the per-lane counter E13 breaks excess down by.
    fn record_shed(&self, lane: Lane) {
        self.telemetry.counter("kernel.shed_total").inc();
        self.telemetry.counter(&format!("kernel.shed_{lane}")).inc();
    }

    /// Trace + measure acceptance of a thread-targeted event at this
    /// node's delivery point (raise-to-deliver latency).
    fn record_thread_delivery(&self, event: &WireEvent) {
        self.trace(event.seq, Stage::Deliver);
        self.telemetry
            .histogram("event.deliver_latency_ns")
            .record_ns(self.telemetry.now_ns().saturating_sub(event.t_raise_ns));
    }

    /// Thread-control-block table (inspection).
    pub fn tcbs(&self) -> &TcbTable {
        &self.tcbs
    }

    /// This node's thread-location hint cache, when enabled.
    pub fn location_cache(&self) -> Option<&LocationCache> {
        self.location_cache.as_ref()
    }

    /// Install the event facility's dispatcher (all nodes usually share
    /// one `Arc`).
    pub fn set_dispatcher(&self, dispatcher: Arc<dyn EventDispatcher>) {
        *self.dispatcher.write() = dispatcher;
    }

    /// Current dispatcher.
    pub fn dispatcher(&self) -> Arc<dyn EventDispatcher> {
        self.dispatcher.read().clone()
    }

    /// Allocate a cluster-unique id (call ids, delivery ids, event seqs).
    pub fn next_seq(&self) -> u64 {
        ((self.node.0 as u64) << 40) | self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a thread id rooted at this node.
    pub fn new_thread_id(&self) -> ThreadId {
        ThreadId::new(
            self.node,
            self.next_thread_seq.fetch_add(1, Ordering::Relaxed) as u32,
        )
    }

    /// Allocate an object id homed at this node.
    pub fn new_object_id(&self) -> ObjectId {
        ObjectId::new(
            self.node,
            self.next_object_seq.fetch_add(1, Ordering::Relaxed) as u32,
        )
    }

    /// Ensure future object ids are allocated above `seq` (used when
    /// importing persistent objects so ids never collide).
    pub fn reserve_object_seq(&self, seq: u64) {
        self.next_object_seq.fetch_max(seq + 1, Ordering::Relaxed);
    }

    /// The activation of `thread` on this node, if present.
    pub fn activation(&self, thread: ThreadId) -> Option<Arc<Activation>> {
        self.activations.lock().get(&thread).map(|(a, _)| a.clone())
    }

    /// Number of live activations (diagnostics; E6's orphan check).
    pub fn activation_count(&self) -> usize {
        self.activations.lock().len()
    }

    // ------------------------------------------------------------------
    // Kernel loop
    // ------------------------------------------------------------------

    /// Start the kernel loop and (if configured) the master handler
    /// thread. Returns the loop join handles.
    pub fn start(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        let mut handles = Vec::new();
        let rx = self
            .net
            .take_mailbox(self.node)
            .expect("node mailbox taken once");
        // Dead-peer fast-fail for `call_remote`: when the failure detector
        // declares a peer dead, drop the reply senders of every call
        // waiting on it, so those callers wake immediately (receipt-style
        // wait — no poll slices). Fires only if reliability is enabled;
        // otherwise no heartbeat round ever runs.
        let weak = Arc::downgrade(self);
        let me = self.node;
        self.net.add_death_watcher(move |observer, peer| {
            if observer == me {
                if let Some(kernel) = weak.upgrade() {
                    kernel.fail_pending_calls_to(peer);
                }
            }
        });
        let reactors = self.config.effective_reactors();
        let k = Arc::clone(self);
        handles.push(
            std::thread::Builder::new()
                .name(format!("kernel-loop-{}", self.node))
                .spawn(move || {
                    if reactors <= 1 {
                        k.run_loop(rx);
                    } else {
                        k.run_router(rx, reactors);
                    }
                })
                .expect("spawn kernel loop"),
        );
        if self.config.object_events == ObjectEventExecution::Master {
            let rx = self
                .object_event_rx
                .lock()
                .take()
                .expect("master queue taken once");
            let k = Arc::clone(self);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("master-handler-{}", self.node))
                    .spawn(move || k.run_master(rx))
                    .expect("spawn master handler"),
            );
        }
        handles
    }

    fn run_loop(self: Arc<Self>, rx: Receiver<doct_net::Envelope<KernelMessage>>) {
        const SWEEP_EVERY: Duration = Duration::from_millis(50);
        // Sweep on a deadline, not only when the mailbox goes quiet:
        // under sustained inbound traffic `recv_timeout` never expires,
        // and delivery retries/timeouts (and hint fallbacks) would starve.
        let mut next_sweep = Instant::now() + SWEEP_EVERY;
        loop {
            let now = Instant::now();
            if now >= next_sweep {
                if self.shutdown.load(Ordering::Relaxed) {
                    self.drain_deliveries_as_lost();
                    return;
                }
                self.sweep_deliveries();
                next_sweep = now + SWEEP_EVERY;
            }
            let wait = next_sweep.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(env) => {
                    if matches!(env.payload, KernelMessage::Shutdown) {
                        self.shutdown.store(true, Ordering::Relaxed);
                        self.drain_deliveries_as_lost();
                        return;
                    }
                    self.handle(env.payload, env.src);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.drain_deliveries_as_lost();
                    return;
                }
            }
        }
    }

    /// Multi-reactor front end (`reactors > 1`): drain the node's wire
    /// mailbox and distribute work across `n` reactor workers by shard /
    /// thread affinity. Order-sensitive traffic (DSM protocol messages,
    /// invocation replies, object events) is handled inline on this
    /// thread, exactly as the single-reactor loop would.
    fn run_router(self: Arc<Self>, rx: Receiver<doct_net::Envelope<KernelMessage>>, n: usize) {
        const ROUTER_TICK: Duration = Duration::from_millis(50);
        let reactors: Vec<Arc<Reactor>> = (0..n)
            .map(|r| {
                let gauge = self
                    .telemetry
                    .gauge(&format!("kernel.reactor_depth.n{}.r{r}", self.node.0));
                Arc::new(Reactor::new(gauge))
            })
            .collect();
        let mut workers = Vec::with_capacity(n);
        for r in 0..n {
            let k = Arc::clone(&self);
            let rs = reactors.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("reactor-{}-{r}", self.node))
                    .spawn(move || k.run_reactor(r, &rs))
                    .expect("spawn reactor"),
            );
        }
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match rx.recv_timeout(ROUTER_TICK) {
                Ok(env) => {
                    if matches!(env.payload, KernelMessage::Shutdown) {
                        self.shutdown.store(true, Ordering::Relaxed);
                        break;
                    }
                    self.route(&reactors, env.payload, env.src);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.shutdown.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        // Stop the workers before draining, so no reactor-side receipt
        // handler races the drain; raiser threads still inserting race it
        // too, which is why the table refuses inserts once draining.
        for r in &reactors {
            r.wake();
        }
        for w in workers {
            let _ = w.join();
        }
        self.drain_deliveries_as_lost();
    }

    /// Route one wire message to its reactor (or handle it inline).
    fn route(self: &Arc<Self>, reactors: &[Arc<Reactor>], msg: KernelMessage, src: NodeId) {
        /// Queue depth past which the router invites the neighbour to
        /// steal even though the owner is already awake.
        const INVITE_DEPTH: usize = 8;
        let n = reactors.len();
        let r = match &msg {
            // Receipts go to the reactor that owns the delivery's shard,
            // so shard sweeps and receipt resolution share a home.
            KernelMessage::DeliverReceipt { delivery_id, .. } => shard_of(*delivery_id) % n,
            KernelMessage::DeliverThread { target, .. } => thread_slot(*target, n),
            KernelMessage::SyncResume { raiser, .. } => thread_slot(*raiser, n),
            KernelMessage::Invoke { call_id, .. } => (*call_id as usize) % n,
            // DSM protocol traffic, invocation replies and object events
            // keep their wire order: handled inline on the router thread.
            KernelMessage::Dsm(_)
            | KernelMessage::InvokeReply { .. }
            | KernelMessage::DeliverObject { .. }
            | KernelMessage::Shutdown => {
                self.handle(msg, src);
                return;
            }
        };
        let was_empty = reactors[r].queue.push((msg, src));
        reactors[r].depth.add(1);
        if was_empty {
            reactors[r].wake();
        } else if reactors[r].queue.len() >= INVITE_DEPTH {
            reactors[(r + 1) % n].wake();
        }
    }

    /// One reactor worker: drain the owned queue in batches, steal from
    /// the deepest sibling when idle, sweep the owned delivery shards on
    /// the usual cadence, park otherwise.
    fn run_reactor(self: Arc<Self>, r: usize, reactors: &[Arc<Reactor>]) {
        const SWEEP_EVERY: Duration = Duration::from_millis(50);
        const BATCH: usize = 64;
        let n = reactors.len();
        let mut next_sweep = Instant::now() + SWEEP_EVERY;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let now = Instant::now();
            if now >= next_sweep {
                self.sweep_shards(r, n);
                if r == 0 {
                    self.sample_mailbox_depths();
                }
                next_sweep = now + SWEEP_EVERY;
            }
            let batch = reactors[r].queue.pop_batch(BATCH);
            if !batch.is_empty() {
                reactors[r].depth.add(-(batch.len() as i64));
                for (msg, src) in batch {
                    self.handle(msg, src);
                }
                continue;
            }
            // Idle: steal the youngest run from the deepest sibling.
            let victim = (0..n)
                .filter(|&v| v != r)
                .max_by_key(|&v| reactors[v].queue.len())
                .filter(|&v| !reactors[v].queue.is_empty());
            if let Some(v) = victim {
                let stolen = reactors[v].queue.steal(BATCH / 2);
                if !stolen.is_empty() {
                    reactors[v].depth.add(-(stolen.len() as i64));
                    self.telemetry.counter("kernel.reactor_steals").inc();
                    for (msg, src) in stolen {
                        self.handle(msg, src);
                    }
                    continue;
                }
            }
            reactors[r].park_until(next_sweep);
        }
    }

    /// Resolve every in-flight delivery as [`DeliveryStatus::Lost`] when
    /// the kernel loop exits: nobody will process receipts after this
    /// point, so leaving trackers behind would strand raisers until their
    /// waiter timeout with a misleading `timed_out` verdict. Marks the
    /// table draining first, so a raiser thread racing this drain has its
    /// insert refused and resolves the tracker as `Lost` itself instead
    /// of stranding it (the `sharded-table-drain` model covers the race).
    fn drain_deliveries_as_lost(&self) {
        for t in self.deliveries.drain() {
            self.telemetry.counter("delivery.lost").inc();
            let _ = t.result_tx.send(DeliveryStatus::Lost);
        }
    }

    fn run_master(self: Arc<Self>, rx: Receiver<(ObjectId, WireEvent)>) {
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok((object, event)) => {
                    self.stats
                        .object_events_master
                        .fetch_add(1, Ordering::Relaxed);
                    self.run_object_event(object, event);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Ask the loop (and master thread) to exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn handle(self: &Arc<Self>, msg: KernelMessage, src: NodeId) {
        match msg {
            KernelMessage::Invoke {
                call_id,
                reply_to,
                object,
                entry,
                args,
                attrs,
                depth,
            } => self.handle_invoke(call_id, reply_to, object, entry, args, attrs, depth),
            KernelMessage::InvokeReply {
                call_id,
                result,
                attrs,
            } => {
                // Bind before sending: an `if let` scrutinee keeps the
                // `pending_calls` guard alive for the whole block.
                let pending = self.pending_calls.lock().remove(&call_id);
                if let Some(p) = pending {
                    let _ = p.tx.send((result, attrs));
                }
            }
            KernelMessage::Dsm(m) => self.dsm.handle_message(m),
            KernelMessage::DeliverThread {
                event,
                target,
                origin,
                delivery_id,
                hops,
                anchor,
                hinted,
            } => {
                self.handle_deliver_thread(event, target, origin, delivery_id, hops, anchor, hinted)
            }
            KernelMessage::DeliverReceipt {
                delivery_id,
                verdict,
            } => self.handle_receipt(delivery_id, verdict),
            KernelMessage::DeliverObject { event, object } => {
                self.enqueue_object_event(object, event)
            }
            KernelMessage::SyncResume {
                seq,
                raiser,
                verdict,
            } => {
                if let Some(act) = self.activation(raiser) {
                    act.push_sync_result(seq, verdict);
                }
            }
            KernelMessage::Shutdown => {}
        }
        let _ = src;
    }

    // ------------------------------------------------------------------
    // Invocations
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_invoke(
        self: &Arc<Self>,
        call_id: u64,
        reply_to: NodeId,
        object: ObjectId,
        entry: String,
        args: Value,
        attrs: ThreadAttributes,
        depth: u32,
    ) {
        let kernel = self.me();
        std::thread::Builder::new()
            .name(format!("worker-{}-{}", self.node, call_id))
            .spawn(move || {
                let thread = attrs.thread;
                let activation = kernel.checkin(attrs);
                kernel.tcbs.arrive(thread, depth, Some(reply_to));
                let result = kernel.execute_local(&activation, object, &entry, args, depth);
                let attrs_back = activation.attributes_snapshot();
                kernel.tcbs.leave(thread);
                kernel.checkout(thread);
                let _ = kernel.net.send(
                    kernel.node,
                    reply_to,
                    KernelMessage::InvokeReply {
                        call_id,
                        result,
                        attrs: attrs_back,
                    },
                    MessageClass::Invocation,
                );
            })
            .expect("spawn invocation worker");
    }

    /// Register (or re-enter) the thread's activation on this node.
    pub fn checkin(&self, attrs: ThreadAttributes) -> Arc<Activation> {
        let thread = attrs.thread;
        let mut acts = self.activations.lock();
        match acts.get_mut(&thread) {
            Some((act, sessions)) => {
                *sessions += 1;
                // The arriving copy is the freshest version of the
                // travelling record.
                act.with_attributes(|a| *a = attrs);
                act.clone()
            }
            None => {
                let act = Arc::new(Activation::with_mailbox(attrs, self.config.mailbox));
                acts.insert(thread, (act.clone(), 1));
                drop(acts);
                self.net
                    .multicast_registry()
                    .join(thread.multicast_group(), self.node);
                act
            }
        }
    }

    /// Drop one session; removes the activation when none remain.
    pub fn checkout(&self, thread: ThreadId) {
        let mut acts = self.activations.lock();
        if let Some((_, sessions)) = acts.get_mut(&thread) {
            *sessions -= 1;
            if *sessions == 0 {
                acts.remove(&thread);
                drop(acts);
                self.net
                    .multicast_registry()
                    .leave(thread.multicast_group(), self.node);
            }
        }
    }

    /// Execute an entry point locally: frame push, delivery points at the
    /// boundaries, panic containment.
    pub fn execute_local(
        self: &Arc<Self>,
        activation: &Arc<Activation>,
        object: ObjectId,
        entry: &str,
        args: Value,
        depth: u32,
    ) -> Result<Value, KernelError> {
        self.stats.local_invocations.fetch_add(1, Ordering::Relaxed);
        let record = self
            .directory
            .get(object)
            .ok_or(KernelError::UnknownObject(object))?;
        let behavior = self
            .classes
            .get(&record.class)
            .ok_or_else(|| KernelError::UnknownClass(record.class.clone()))?;
        activation.lock().stack.push(crate::activation::Frame {
            object,
            entry: entry.to_string(),
            depth,
        });
        let mut ctx = Ctx::new(self.me(), Arc::clone(activation));
        // Delivery point at invocation entry.
        let mut result = ctx.poll_events().and_then(|()| {
            record.run_exclusive(|| {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    behavior.dispatch(&mut ctx, entry, args)
                }));
                match outcome {
                    Ok(r) => r,
                    Err(p) => Err(KernelError::InvocationFailed(panic_text(p))),
                }
            })
        });
        // Delivery point at invocation exit (even on error).
        if let Err(e) = ctx.poll_events() {
            result = Err(e);
        }
        activation.lock().stack.pop();
        result
    }

    /// Synchronously run an invocation at a remote home node, shipping the
    /// thread's attributes there and back.
    pub fn call_remote(
        &self,
        home: NodeId,
        object: ObjectId,
        entry: &str,
        args: Value,
        attrs: ThreadAttributes,
        depth: u32,
    ) -> Result<(Result<Value, KernelError>, ThreadAttributes), KernelError> {
        parking_lot::lockdep::blocking_point("kernel::call_remote");
        self.stats
            .remote_invocations
            .fetch_add(1, Ordering::Relaxed);
        let call_id = self.next_seq();
        let (tx, rx) = bounded(1);
        self.pending_calls
            .lock()
            .insert(call_id, PendingCall { tx, home });
        let sent = self
            .net
            .send(
                self.node,
                home,
                KernelMessage::Invoke {
                    call_id,
                    reply_to: self.node,
                    object,
                    entry: entry.to_string(),
                    args,
                    attrs,
                    depth,
                },
                MessageClass::Invocation,
            )
            .map_err(|e| KernelError::InvalidArgument(e.to_string()))?;
        if !sent.is_sent() {
            self.pending_calls.lock().remove(&call_id);
            return Err(KernelError::Timeout(format!(
                "invoke {object}::{entry}: link to {home} down"
            )));
        }
        // With the reliability layer on, the failure detector resolves
        // this wait early: the death watcher (registered in `start`)
        // drops our reply sender the moment it declares `home` dead, so
        // the recv below wakes with `Disconnected` within one heartbeat
        // round of the verdict — no poll slices, no latency quantization.
        // The call was registered *before* this check, so a death verdict
        // landing between the two is seen by exactly one side.
        if self.net.reliability_enabled() {
            if self.net.peer_state(self.node, home) == Some(doct_net::PeerState::Dead) {
                self.pending_calls.lock().remove(&call_id);
                return Err(KernelError::NodeUnreachable(home));
            }
            return match rx.recv_timeout(self.config.invoke_timeout) {
                Ok(pair) => Ok(pair),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    self.pending_calls.lock().remove(&call_id);
                    Err(KernelError::Timeout(format!(
                        "invoke {object}::{entry} on {home}"
                    )))
                }
                // Only the death watcher drops a registered sender.
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    Err(KernelError::NodeUnreachable(home))
                }
            };
        }
        match rx.recv_timeout(self.config.invoke_timeout) {
            Ok(pair) => Ok(pair),
            Err(_) => {
                self.pending_calls.lock().remove(&call_id);
                Err(KernelError::Timeout(format!(
                    "invoke {object}::{entry} on {home}"
                )))
            }
        }
    }

    /// Fail every in-flight remote call waiting on `peer`: remove the
    /// pending entries under the lock, then drop the reply senders after
    /// it is released so each caller's `recv` wakes with `Disconnected`
    /// and resolves as `NodeUnreachable` immediately.
    fn fail_pending_calls_to(&self, peer: NodeId) {
        let dropped: Vec<InvokeReplySender> = {
            let mut calls = self.pending_calls.lock();
            let ids: Vec<u64> = calls
                .iter()
                .filter(|(_, p)| p.home == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| calls.remove(&id))
                .map(|p| p.tx)
                .collect()
        };
        self.telemetry
            .counter("kernel.calls_failed_fast")
            .add(dropped.len() as u64);
        drop(dropped);
    }

    // ------------------------------------------------------------------
    // Logical thread spawning
    // ------------------------------------------------------------------

    /// Run `body` as a logical thread rooted on this node. Returns the
    /// receiver for the thread's result.
    pub fn spawn_logical(
        self: &Arc<Self>,
        attrs: ThreadAttributes,
        body: impl FnOnce(&mut Ctx) -> Result<Value, KernelError> + Send + 'static,
    ) -> Receiver<Result<Value, KernelError>> {
        let kernel = self.me();
        let (tx, rx) = bounded(1);
        let thread = attrs.thread;
        if let Some(g) = attrs.group {
            self.groups.join(g, thread);
        }
        std::thread::Builder::new()
            .name(format!("logical-{thread}"))
            .spawn(move || {
                let activation = kernel.checkin(attrs);
                kernel.tcbs.arrive(thread, 0, None);
                let mut ctx = Ctx::new(Arc::clone(&kernel), Arc::clone(&activation));
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                let mut result = match outcome {
                    Ok(r) => r,
                    Err(p) => Err(KernelError::InvocationFailed(panic_text(p))),
                };
                // Final delivery point: run any straggler events (e.g. a
                // TERMINATE that arrived at the very end).
                if let Err(e) = ctx.poll_events() {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
                let group = activation.lock().attributes.group;
                kernel.tcbs.leave(thread);
                kernel.checkout(thread);
                // The thread no longer exists anywhere: drop its location
                // hint so later raises from this node fail fast to the
                // wave (remote caches self-correct via "not here").
                if let Some(cache) = &kernel.location_cache {
                    cache.invalidate(thread);
                }
                if let Some(g) = group {
                    kernel.groups.leave(g, thread);
                }
                let _ = tx.send(result);
            })
            .expect("spawn logical thread");
        rx
    }

    // ------------------------------------------------------------------
    // Event routing
    // ------------------------------------------------------------------

    /// Raise an event: the kernel-level primitive behind both `raise` and
    /// `raise_and_wait` (§5.3). Returns the receipt ticket and the event
    /// seq (the rendezvous key for synchronous raises).
    pub fn raise_event(
        self: &Arc<Self>,
        name: EventName,
        payload: Value,
        target: RaiseTarget,
        sync: bool,
        raiser: Option<&Arc<Activation>>,
    ) -> (RaiseTicket, u64) {
        let seq = self.next_seq();
        let variant = match (&target, sync) {
            (RaiseTarget::Thread(_), false) => RaiseVariant::ThreadAsync,
            (RaiseTarget::Thread(_), true) => RaiseVariant::ThreadSync,
            (RaiseTarget::Group(_), false) => RaiseVariant::GroupAsync,
            (RaiseTarget::Group(_), true) => RaiseVariant::GroupSync,
            (RaiseTarget::Object(_), false) => RaiseVariant::ObjectAsync,
            (RaiseTarget::Object(_), true) => RaiseVariant::ObjectSync,
        };
        self.telemetry
            .trace(seq, Stage::Raise, u64::from(self.node.0), variant);
        self.telemetry.counter("event.raises").inc();
        let t_raise_ns = self.telemetry.now_ns();
        // Timer-lane events carry a usefulness deadline: past it the tick
        // is stale (the next one supersedes it), before it a near-deadline
        // tick jumps the USER lane at the target's mailbox.
        let deadline_ns = (Lane::classify(&name) == Lane::Timer).then(|| {
            t_raise_ns.saturating_add(
                self.config
                    .mailbox
                    .timer_deadline
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64,
            )
        });
        let event = WireEvent {
            name,
            payload,
            raiser: raiser.map(|a| a.thread),
            raiser_node: self.node,
            seq,
            sync,
            t_raise_ns,
            attrs: raiser.map(|a| a.attributes_snapshot()),
            deadline_ns,
        };
        let ticket = match target {
            RaiseTarget::Object(object) => {
                self.telemetry.counter("delivery.requested").inc();
                self.raise_to_object(object, event)
            }
            RaiseTarget::Thread(thread) => {
                self.telemetry.counter("delivery.requested").inc();
                RaiseTicket {
                    receivers: vec![self.start_thread_delivery(thread, event)],
                    timeout: self.config.delivery_timeout,
                }
            }
            RaiseTarget::Group(group) => {
                let members = self.groups.members(group);
                self.telemetry
                    .counter("delivery.requested")
                    .add(members.len() as u64);
                RaiseTicket {
                    receivers: self.start_group_deliveries(members, event),
                    timeout: self.config.delivery_timeout,
                }
            }
        };
        (ticket, seq)
    }

    fn raise_to_object(self: &Arc<Self>, object: ObjectId, event: WireEvent) -> RaiseTicket {
        let Some(record) = self.directory.get(object) else {
            self.telemetry.counter("delivery.dead").inc();
            return RaiseTicket::immediate(
                DeliveryStatus::TargetDead,
                self.config.delivery_timeout,
            );
        };
        self.trace(event.seq, Stage::Route);
        // Source shedding: a recent receipt said the home node's mailboxes
        // are overloaded, so don't even put a sheddable raise on the wire.
        let lane = Lane::classify(&event.name);
        if lane.sheddable() && record.home != self.node && self.net.peer_pressured(record.home) {
            self.record_shed(lane);
            self.telemetry.counter("kernel.shed_at_source").inc();
            self.telemetry.counter("delivery.overloaded").inc();
            return RaiseTicket::immediate(
                DeliveryStatus::Overloaded(record.home),
                self.config.delivery_timeout,
            );
        }
        if record.home == self.node {
            self.enqueue_object_event(object, event);
        } else {
            self.trace(event.seq, Stage::Send);
            let _ = self.net.send(
                self.node,
                record.home,
                KernelMessage::DeliverObject { event, object },
                MessageClass::Event,
            );
        }
        self.telemetry.counter("delivery.delivered").inc();
        RaiseTicket::immediate(
            DeliveryStatus::Delivered(record.home),
            self.config.delivery_timeout,
        )
    }

    /// Begin locating `thread` and delivering `event` to its tip.
    fn start_thread_delivery(
        self: &Arc<Self>,
        thread: ThreadId,
        event: WireEvent,
    ) -> Receiver<DeliveryStatus> {
        self.start_group_deliveries(vec![thread], event)
            .pop()
            .expect("one receiver per target")
    }

    /// Begin delivering `event` to every thread in `targets`, returning
    /// one status receiver per target, in order. Local tips are served
    /// inline; the remaining targets are registered as trackers and then
    /// probed in one destination-sorted wave, so a group raise hands the
    /// transport all co-destined probes together (one wire batch per
    /// destination, DESIGN.md §3d) instead of a locator wave per member.
    fn start_group_deliveries(
        self: &Arc<Self>,
        targets: Vec<ThreadId>,
        event: WireEvent,
    ) -> Vec<Receiver<DeliveryStatus>> {
        let mut receivers = Vec::with_capacity(targets.len());
        let mut wave = Vec::new();
        for thread in targets {
            let (tx, rx) = bounded(1);
            receivers.push(rx);
            self.trace(event.seq, Stage::Route);
            // Fast path: tip is on this node.
            if self.tcbs.trail(thread) == Trail::TipHere {
                if let Some(act) = self.activation(thread) {
                    self.stats.thread_events.fetch_add(1, Ordering::Relaxed);
                    match act.push_event(event.clone()) {
                        crate::Admission::Stored => {
                            self.record_thread_delivery(&event);
                            self.telemetry.counter("delivery.delivered").inc();
                            let _ = tx.send(DeliveryStatus::Delivered(self.node));
                        }
                        crate::Admission::Shed(lane) => {
                            self.record_shed(lane);
                            self.telemetry.counter("delivery.overloaded").inc();
                            let _ = tx.send(DeliveryStatus::Overloaded(self.node));
                        }
                    }
                    continue;
                }
            }
            let delivery_id = self.next_seq();
            let tracker = DeliveryTracker {
                event: event.clone(),
                target: thread,
                outstanding: 0,
                attempts_left: self.config.delivery_retries,
                anchored: false,
                deadline: Instant::now() + self.config.delivery_timeout,
                hint: None,
                hint_spent: false,
                result_tx: tx,
            };
            match self.deliveries.insert(delivery_id, tracker) {
                Insert::Admitted => wave.push(delivery_id),
                // The kernel loop is draining (shutdown): nobody will ever
                // resolve this tracker, so resolve it as Lost right here —
                // the other half of the drain-vs-insert race.
                Insert::Draining(t) => {
                    self.telemetry.counter("delivery.lost").inc();
                    let _ = t.result_tx.send(DeliveryStatus::Lost);
                }
            }
        }
        if !wave.is_empty() {
            self.send_probe_wave(&wave);
        }
        receivers
    }

    /// Send the probe wave for one registered delivery (initial or retry).
    fn send_probes(self: &Arc<Self>, delivery_id: u64) {
        self.send_probe_wave(&[delivery_id]);
    }

    /// Send probe waves for a set of registered deliveries — or, per
    /// delivery on its first attempt, a single unicast fast-path probe
    /// when the location cache holds a hint for its target. Wave probes
    /// are grouped by destination node (sorted, so fan-out order is
    /// deterministic) and handed to [`Network::send_many`], which
    /// coalesces co-destined probes into one wire batch.
    fn send_probe_wave(self: &Arc<Self>, delivery_ids: &[u64]) {
        let mut per_dst: BTreeMap<NodeId, Vec<(u64, KernelMessage)>> = BTreeMap::new();
        // PathTrace deliveries rooted here run without a wire hop; they
        // are processed after aggregation so the recursive handling never
        // overlaps the bookkeeping below.
        let mut inline_root = Vec::new();
        let mut waved = Vec::with_capacity(delivery_ids.len());
        for &delivery_id in delivery_ids {
            let Some((event, target, try_hint)) = self
                .deliveries
                .with_mut(delivery_id, |t| (t.event.clone(), t.target, !t.hint_spent))
            else {
                continue;
            };
            if try_hint && self.send_hint_probe(delivery_id, &event, target) {
                continue;
            }
            self.trace(event.seq, Stage::Send);
            if self.config.locator == LocatorStrategy::PathTrace && target.root == self.node {
                inline_root.push((delivery_id, event, target));
                continue;
            }
            let probe = KernelMessage::DeliverThread {
                event,
                target,
                origin: self.node,
                delivery_id,
                hops: 0,
                anchor: false,
                hinted: false,
            };
            match self.config.locator {
                LocatorStrategy::Broadcast => {
                    self.net.stats().record_broadcast();
                    for dst in self.net.nodes() {
                        if dst != self.node {
                            per_dst
                                .entry(dst)
                                .or_default()
                                .push((delivery_id, probe.clone()));
                        }
                    }
                }
                LocatorStrategy::PathTrace => {
                    per_dst
                        .entry(target.root)
                        .or_default()
                        .push((delivery_id, probe));
                }
                LocatorStrategy::Multicast => {
                    self.net.stats().record_multicast();
                    for dst in self
                        .net
                        .multicast_registry()
                        .members(target.multicast_group())
                    {
                        if dst != self.node {
                            per_dst
                                .entry(dst)
                                .or_default()
                                .push((delivery_id, probe.clone()));
                        }
                    }
                }
            }
            waved.push(delivery_id);
        }
        // One send_many per destination: co-destined probes (typically a
        // multicast raise's members on one node) share a wire batch.
        let mut sent_counts: HashMap<u64, usize> = HashMap::new();
        for (dst, entries) in per_dst {
            let ids: Vec<u64> = entries.iter().map(|(id, _)| *id).collect();
            let items: Vec<(MessageClass, KernelMessage)> = entries
                .into_iter()
                .map(|(_, m)| (MessageClass::Locate, m))
                .collect();
            let sent = self
                .net
                .send_many(self.node, dst, items)
                .map(|o| o.is_sent())
                .unwrap_or(false);
            if sent {
                for id in ids {
                    *sent_counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        // Account each wave's fan-out; raisers of unreachable targets are
        // notified only after the shard lock is released.
        let mut dead = Vec::new();
        for &delivery_id in &waved {
            let sent = sent_counts.get(&delivery_id).copied().unwrap_or(0);
            if sent == 0 {
                // Nobody to ask: the thread left no trace.
                if let Some(t) = self.deliveries.remove(delivery_id) {
                    self.telemetry.counter("delivery.dead").inc();
                    dead.push(t.result_tx);
                }
            } else {
                let _ = self
                    .deliveries
                    .with_mut(delivery_id, |t| t.outstanding = sent);
            }
        }
        for tx in dead {
            let _ = tx.send(DeliveryStatus::TargetDead);
        }
        for (delivery_id, event, target) in inline_root {
            // We are the root but the tip is not here: follow our own
            // trail without a network hop. One receipt will come back
            // (possibly inline), so account for it first.
            let _ = self.deliveries.with_mut(delivery_id, |t| t.outstanding = 1);
            self.handle_deliver_thread(event, target, self.node, delivery_id, 0, false, false);
        }
    }

    /// Try the location-cache fast path for a delivery: if a (usable)
    /// hint exists, send one unicast probe to the hinted node and record
    /// the hint on the tracker so a "not here" receipt or a sweep-side
    /// timeout falls back to the full wave. Returns `true` when the probe
    /// went out (or the fallback was already triggered inline).
    fn send_hint_probe(
        self: &Arc<Self>,
        delivery_id: u64,
        event: &WireEvent,
        target: ThreadId,
    ) -> bool {
        let Some(cache) = &self.location_cache else {
            return false;
        };
        let Some((node, generation)) = cache.lookup(target) else {
            return false;
        };
        if node == self.node {
            // The local fast path already failed before this delivery was
            // registered, so a self-hint is worthless: drop it and wave.
            cache.invalidate(target);
            return false;
        }
        if self.net.reliability_enabled()
            && self.net.peer_state(self.node, node) == Some(doct_net::PeerState::Dead)
        {
            // Never wait on a hint the failure detector has disproved.
            cache.invalidate(target);
            return false;
        }
        // Source shedding: the hinted node recently shed on us. Resolve a
        // sheddable raise as Overloaded right here instead of feeding the
        // flood; the hint itself stays valid (the thread is still there).
        let lane = Lane::classify(&event.name);
        if lane.sheddable() && self.net.peer_pressured(node) {
            let removed = self.deliveries.remove(delivery_id);
            if let Some(t) = removed {
                self.record_shed(lane);
                self.telemetry.counter("kernel.shed_at_source").inc();
                self.telemetry.counter("delivery.overloaded").inc();
                let _ = t.result_tx.send(DeliveryStatus::Overloaded(node));
            }
            return true;
        }
        let armed = self.deliveries.with_mut(delivery_id, |t| {
            t.hint_spent = true;
            t.hint = Some((
                node,
                generation,
                Instant::now() + cache.config().hint_timeout,
            ));
            t.outstanding = 1;
        });
        if armed.is_none() {
            return true;
        }
        self.trace(event.seq, Stage::Send);
        let msg = KernelMessage::DeliverThread {
            event: event.clone(),
            target,
            origin: self.node,
            delivery_id,
            hops: 0,
            anchor: false,
            hinted: true,
        };
        let sent = self
            .net
            .send_hinted(self.node, node, msg, MessageClass::Locate)
            .map(|o| o.is_sent())
            .unwrap_or(false);
        if !sent {
            // Unreliable transport and the link is down: treat it as an
            // immediate "not here" so the wave fallback runs now.
            self.handle_receipt(delivery_id, ReceiptVerdict::NotHere);
        }
        true
    }

    /// A probe arrived: enqueue here, forward along the trail, or report
    /// back "not here".
    #[allow(clippy::too_many_arguments)]
    fn handle_deliver_thread(
        self: &Arc<Self>,
        event: WireEvent,
        target: ThreadId,
        origin: NodeId,
        delivery_id: u64,
        hops: u32,
        anchor: bool,
        hinted: bool,
    ) {
        let receipt = |verdict: ReceiptVerdict| {
            if origin == self.node {
                self.handle_receipt(delivery_id, verdict);
            } else {
                let _ = self.net.send(
                    self.node,
                    origin,
                    KernelMessage::DeliverReceipt {
                        delivery_id,
                        verdict,
                    },
                    MessageClass::Locate,
                );
            }
        };
        // Enqueue at this node's activation, turning the mailbox's
        // admission into the receipt verdict: a shed is *reported*, not
        // silently dropped, and rides the (coalesced) receipt back to the
        // origin as the backpressure signal.
        let admit = |act: &Arc<Activation>, event: WireEvent| -> ReceiptVerdict {
            self.stats.thread_events.fetch_add(1, Ordering::Relaxed);
            match act.push_event(event.clone()) {
                crate::Admission::Stored => {
                    self.record_thread_delivery(&event);
                    ReceiptVerdict::Found(self.node)
                }
                crate::Admission::Shed(lane) => {
                    self.record_shed(lane);
                    ReceiptVerdict::Overloaded(self.node)
                }
            }
        };
        if anchor {
            // Sticky delivery at the root: the thread is alive here (any
            // trail), just too fast for the probes; leave the event in its
            // root activation, drained at its next delivery point here.
            let alive = self.tcbs.trail(target) != Trail::Unknown;
            if alive {
                if let Some(act) = self.activation(target) {
                    receipt(admit(&act, event));
                    return;
                }
            }
            receipt(ReceiptVerdict::NotHere);
            return;
        }
        match self.tcbs.trail(target) {
            Trail::TipHere => {
                if let Some(act) = self.activation(target) {
                    receipt(admit(&act, event));
                } else {
                    receipt(ReceiptVerdict::NotHere);
                }
            }
            Trail::Forward(next) => {
                // Hinted unicast probes chase a short forwarding trail
                // even under broadcast/multicast: the thread usually made
                // one hop since the hint was recorded, and the wave
                // fallback still covers longer moves.
                const HINT_CHASE_HOPS: u32 = 3;
                if self.config.locator == LocatorStrategy::PathTrace
                    || (hinted && hops < HINT_CHASE_HOPS)
                {
                    self.trace(event.seq, Stage::Send);
                    let _ = self.net.send(
                        self.node,
                        next,
                        KernelMessage::DeliverThread {
                            event,
                            target,
                            origin,
                            delivery_id,
                            hops: hops + 1,
                            anchor: false,
                            hinted,
                        },
                        MessageClass::Locate,
                    );
                } else {
                    // Broadcast/multicast probes cover the tip directly.
                    receipt(ReceiptVerdict::NotHere);
                }
            }
            Trail::Unknown => receipt(ReceiptVerdict::NotHere),
        }
    }

    fn handle_receipt(self: &Arc<Self>, delivery_id: u64, verdict: ReceiptVerdict) {
        let mut retry = false;
        // A resolved tracker's raiser is notified only after the
        // deliveries lock is released (collect-then-send).
        let mut resolved: Option<(Sender<DeliveryStatus>, DeliveryStatus)> = None;
        // Backpressure to note once the lock is released.
        let mut pressured: Option<NodeId> = None;
        {
            let idx = shard_of(delivery_id);
            let mut shard = self.deliveries.lock_shard(idx);
            let Some(t) = shard.entries.get_mut(&delivery_id) else {
                return;
            };
            match verdict {
                ReceiptVerdict::Found(node) => {
                    // Learn (or refresh) the target's location for the
                    // next raise from this node; local deliveries go
                    // through the tip fast path, so only cache remotes.
                    if node != self.node {
                        if let Some(cache) = &self.location_cache {
                            cache.record(t.target, node);
                        }
                    }
                    self.telemetry.counter("delivery.delivered").inc();
                    if let Some(t) = shard.entries.remove(&delivery_id) {
                        resolved = Some((t.result_tx, DeliveryStatus::Delivered(node)));
                    }
                }
                ReceiptVerdict::Overloaded(node) => {
                    // The mailbox said no: resolve without retrying (a
                    // retry would feed the flood) and shed future
                    // sheddable raises toward that node at the source for
                    // a while. The thread *is* there, so refresh the hint.
                    if node != self.node {
                        if let Some(cache) = &self.location_cache {
                            cache.record(t.target, node);
                        }
                        pressured = Some(node);
                    }
                    self.telemetry.counter("delivery.overloaded").inc();
                    if let Some(t) = shard.entries.remove(&delivery_id) {
                        resolved = Some((t.result_tx, DeliveryStatus::Overloaded(node)));
                    }
                }
                ReceiptVerdict::NotHere => {
                    if let Some((_, generation, _)) = t.hint.take() {
                        // The hinted node answered "not here": the cache
                        // entry is stale. Invalidate it and fall back to
                        // the full locator wave without consuming one of
                        // the wave's retry attempts.
                        if let Some(cache) = &self.location_cache {
                            cache.invalidate_stale(t.target, generation);
                        }
                        t.outstanding = 0;
                        retry = true;
                    } else {
                        t.outstanding = t.outstanding.saturating_sub(1);
                    }
                    if !retry && t.outstanding == 0 {
                        if t.attempts_left > 0 {
                            t.attempts_left -= 1;
                            retry = true;
                        } else if !t.anchored {
                            // Last resort: anchor the event at the root
                            // activation of a thread too fast to pin down.
                            t.anchored = true;
                            t.outstanding = 1;
                            let msg = KernelMessage::DeliverThread {
                                event: t.event.clone(),
                                target: t.target,
                                origin: self.node,
                                delivery_id,
                                hops: 0,
                                anchor: true,
                                hinted: false,
                            };
                            let root = t.target.root;
                            drop(shard);
                            if root == self.node {
                                self.handle(msg, self.node);
                            } else {
                                let _ = self.net.send(self.node, root, msg, MessageClass::Locate);
                            }
                            return;
                        } else {
                            self.telemetry.counter("delivery.dead").inc();
                            if let Some(t) = shard.entries.remove(&delivery_id) {
                                resolved = Some((t.result_tx, DeliveryStatus::TargetDead));
                            }
                        }
                    }
                }
            }
        }
        if let Some(node) = pressured {
            self.net
                .note_backpressure(node, self.config.mailbox.backpressure_hold);
        }
        if let Some((tx, status)) = resolved {
            let _ = tx.send(status);
        }
        if retry {
            // Cover the race where the thread moved mid-probe: check the
            // local fast path again, then resend the wave.
            let Some((event, target)) = self
                .deliveries
                .with_mut(delivery_id, |t| (t.event.clone(), t.target))
            else {
                return;
            };
            if self.tcbs.trail(target) == Trail::TipHere {
                if let Some(act) = self.activation(target) {
                    let admission = act.push_event(event.clone());
                    let removed = self.deliveries.remove(delivery_id);
                    if let Some(t) = removed {
                        match admission {
                            crate::Admission::Stored => {
                                self.record_thread_delivery(&event);
                                self.telemetry.counter("delivery.delivered").inc();
                                let _ = t.result_tx.send(DeliveryStatus::Delivered(self.node));
                            }
                            crate::Admission::Shed(lane) => {
                                self.record_shed(lane);
                                self.telemetry.counter("delivery.overloaded").inc();
                                let _ = t.result_tx.send(DeliveryStatus::Overloaded(self.node));
                            }
                        }
                    }
                    return;
                }
            }
            self.send_probes(delivery_id);
        }
    }

    /// Single-reactor sweep: every shard, plus the mailbox-depth sample.
    fn sweep_deliveries(self: &Arc<Self>) {
        self.sweep_shards(0, 1);
        self.sample_mailbox_depths();
    }

    /// Sweep the delivery shards owned by reactor `owner` out of `stride`
    /// (shard `s` belongs to reactor `s % stride`), one shard lock at a
    /// time — a long sweep never stalls registration or receipts on the
    /// other shards.
    fn sweep_shards(self: &Arc<Self>, owner: usize, stride: usize) {
        let now = Instant::now();
        let detector_on = self.net.reliability_enabled();
        // Deliveries whose hint probe expired; probed again (as a full
        // wave) after the shard locks are released — send_probe_wave
        // re-locks them.
        let mut hint_fallbacks = Vec::new();
        // Trackers the sweep resolves; their raisers are notified only
        // after the shard locks are released (collect-then-send).
        let mut resolved: Vec<(Sender<DeliveryStatus>, DeliveryStatus)> = Vec::new();
        let mut idx = owner;
        while idx < self.deliveries.shard_count() {
            let mut shard = self.deliveries.lock_shard(idx);
            shard.entries.retain(|id, t| {
                if now >= t.deadline {
                    self.telemetry.counter("delivery.timeout").inc();
                    resolved.push((t.result_tx.clone(), DeliveryStatus::Timeout));
                    return false;
                }
                // §7.2 dead-target notification under real link failure:
                // when the failure detector has declared the target's root
                // node dead, resolve now instead of letting the raiser sit
                // out the whole delivery timeout.
                if detector_on
                    && t.target.root != self.node
                    && self.net.peer_state(self.node, t.target.root)
                        == Some(doct_net::PeerState::Dead)
                {
                    self.telemetry.counter("delivery.dead").inc();
                    resolved.push((t.result_tx.clone(), DeliveryStatus::TargetDead));
                    return false;
                }
                // Give up on an unanswered hint probe after one retry
                // slice — or immediately once the detector declares the
                // hinted node dead — and fall back to the locator wave.
                // A receipt that still arrives afterwards at worst
                // spuriously decrements the wave's outstanding count,
                // which only hastens a retry/anchor; the per-thread seen
                // ring keeps delivery exactly-once either way.
                if let Some((node, generation, hint_deadline)) = t.hint {
                    let node_dead = detector_on
                        && self.net.peer_state(self.node, node) == Some(doct_net::PeerState::Dead);
                    if node_dead || now >= hint_deadline {
                        t.hint = None;
                        t.outstanding = 0;
                        if let Some(cache) = &self.location_cache {
                            if node_dead {
                                cache.invalidate(t.target);
                            } else {
                                cache.invalidate_stale(t.target, generation);
                            }
                        }
                        hint_fallbacks.push(*id);
                    }
                }
                true
            });
            drop(shard);
            idx += stride;
        }
        for (tx, status) in resolved {
            let _ = tx.send(status);
        }
        self.send_probe_wave(&hint_fallbacks);
    }

    /// Sample every local activation's mailbox depth into the
    /// `kernel.mailbox_depth` histogram. Reads the lock-free atomic depth
    /// mirror, never the activation lock: the sweep can neither observe a
    /// mailbox mid-resize nor stall delivery under load.
    fn sample_mailbox_depths(&self) {
        let acts: Vec<Arc<Activation>> = self
            .activations
            .lock()
            .values()
            .map(|(a, _)| Arc::clone(a))
            .collect();
        if acts.is_empty() {
            return;
        }
        let histogram = self.telemetry.histogram("kernel.mailbox_depth");
        for act in acts {
            histogram.record_ns(act.depth_hint() as u64);
        }
    }

    /// Resume a raiser blocked in `raise_and_wait` (facility-facing).
    pub fn resume_sync_raiser(&self, event: &WireEvent, verdict: Value) {
        self.trace(event.seq, Stage::Unwind);
        let Some(raiser) = event.raiser else { return };
        if event.raiser_node == self.node {
            if let Some(act) = self.activation(raiser) {
                act.push_sync_result(event.seq, verdict);
            }
        } else {
            let _ = self.net.send(
                self.node,
                event.raiser_node,
                KernelMessage::SyncResume {
                    seq: event.seq,
                    raiser,
                    verdict,
                },
                MessageClass::Event,
            );
        }
    }

    // ------------------------------------------------------------------
    // Object events
    // ------------------------------------------------------------------

    fn enqueue_object_event(self: &Arc<Self>, object: ObjectId, event: WireEvent) {
        match self.config.object_events {
            ObjectEventExecution::Master => {
                let _ = self.object_event_tx.send((object, event));
            }
            ObjectEventExecution::Spawn => {
                self.stats
                    .object_events_spawned
                    .fetch_add(1, Ordering::Relaxed);
                let kernel = self.me();
                std::thread::Builder::new()
                    .name(format!("objevent-{}", self.node))
                    .spawn(move || kernel.run_object_event(object, event))
                    .expect("spawn object event thread");
            }
        }
    }

    /// Execute one object-targeted event on the calling thread, under a
    /// surrogate logical thread that takes on the raiser's attributes
    /// (§6.1) when a snapshot travelled with the event.
    pub fn run_object_event(self: &Arc<Self>, object: ObjectId, event: WireEvent) {
        self.trace(event.seq, Stage::Deliver);
        self.telemetry
            .histogram("event.deliver_latency_ns")
            .record_ns(self.telemetry.now_ns().saturating_sub(event.t_raise_ns));
        let surrogate_id = self.new_thread_id();
        let attrs = match &event.attrs {
            // Surrogate: same attribute record (extensions shared), new
            // thread identity.
            Some(a) => {
                let mut copy = a.clone();
                copy.thread = surrogate_id;
                copy.group = None; // the surrogate is not a group member
                copy
            }
            None => ThreadAttributes::new(surrogate_id, self.node),
        };
        let kernel = self.me();
        let activation = kernel.checkin(attrs);
        kernel.tcbs.arrive(surrogate_id, 0, None);
        let dispatcher = kernel.dispatcher();
        {
            let mut ctx = Ctx::new(Arc::clone(&kernel), Arc::clone(&activation));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dispatcher.deliver_to_object(&mut ctx, object, event);
            }));
            if outcome.is_err() {
                // A handler panicked; the object event is dropped but the
                // kernel thread survives.
            }
        }
        kernel.tcbs.leave(surrogate_id);
        kernel.checkout(surrogate_id);
    }
}

impl NodeKernel {
    /// Wire the cluster timer service's command channel into this node.
    pub fn set_timer_channel(&self, tx: Sender<TimerCmd>) {
        *self.timer_tx.lock() = Some(tx);
    }

    /// Register a periodic TIMER for `thread` (no-op without a timer
    /// service, e.g. in single-node unit tests).
    pub fn register_timer(&self, thread: ThreadId, id: u64, period: Duration, payload: Value) {
        // Clone the sender out: an `if let` scrutinee keeps the guard
        // alive for the whole block, which would hold `timer_tx` across
        // the channel send.
        let tx = self.timer_tx.lock().clone();
        if let Some(tx) = tx {
            let _ = tx.send(TimerCmd::Register {
                thread,
                id,
                period,
                payload,
                event: EventName::System(crate::SystemEvent::Timer),
                one_shot: false,
            });
        }
    }

    /// Register a one-shot ALARM for `thread`, firing after `delay`.
    pub fn register_alarm(&self, thread: ThreadId, id: u64, delay: Duration, payload: Value) {
        let tx = self.timer_tx.lock().clone();
        if let Some(tx) = tx {
            let _ = tx.send(TimerCmd::Register {
                thread,
                id,
                period: delay,
                payload,
                event: EventName::System(crate::SystemEvent::Alarm),
                one_shot: true,
            });
        }
    }

    /// Cancel one timer of `thread`.
    pub fn cancel_timer(&self, thread: ThreadId, id: u64) {
        let tx = self.timer_tx.lock().clone();
        if let Some(tx) = tx {
            let _ = tx.send(TimerCmd::Cancel { thread, id });
        }
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic in entry point".to_string()
    }
}
