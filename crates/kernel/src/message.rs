//! Node-to-node kernel messages.

use crate::{KernelError, ObjectId, ThreadAttributes, ThreadId, Value, WireEvent};
use doct_dsm::DsmMessage;
use doct_net::{NodeId, WireMessage};
use std::fmt;

/// What a `DeliverThread` probe found at the probed node, carried back to
/// the origin in a `DeliverReceipt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiptVerdict {
    /// The event was enqueued at this node's activation.
    Found(NodeId),
    /// The thread has no usable activation here ("not here").
    NotHere,
    /// The thread was here but its mailbox shed the event: the raise
    /// resolves as `Overloaded` (no retry — the mailbox said no) and the
    /// origin applies backpressure toward the named node.
    Overloaded(NodeId),
}

/// Everything that flows between node kernels.
#[derive(Clone)]
pub enum KernelMessage {
    /// Remote invocation request: the logical thread (attributes included)
    /// moves to the target node to execute `entry` on `object`.
    Invoke {
        /// Correlates the reply.
        call_id: u64,
        /// Node hosting the calling frame.
        reply_to: NodeId,
        /// Target object (must be homed at the receiving node).
        object: ObjectId,
        /// Entry point name.
        entry: String,
        /// Invocation arguments.
        args: Value,
        /// The thread's travelling attribute record.
        attrs: ThreadAttributes,
        /// Invocation depth of the new frame.
        depth: u32,
    },
    /// Remote invocation reply; carries the (possibly mutated) attributes
    /// back to the calling frame.
    InvokeReply {
        /// Correlation id from the request.
        call_id: u64,
        /// Entry result.
        result: Result<Value, KernelError>,
        /// The thread's attributes after executing remotely.
        attrs: ThreadAttributes,
    },
    /// Encapsulated DSM coherence traffic.
    Dsm(DsmMessage),
    /// Locate-and-deliver probe for a thread-targeted event (used by all
    /// three locator strategies; they differ in who gets the probe).
    DeliverThread {
        /// The event being delivered.
        event: WireEvent,
        /// Target thread.
        target: ThreadId,
        /// Node that originated the delivery (gets the receipt).
        origin: NodeId,
        /// Correlates receipts at the origin.
        delivery_id: u64,
        /// Hops taken so far (path-trace statistics).
        hops: u32,
        /// Anchor attempt: after locate probes lost the race against a
        /// fast-moving thread, enqueue at the thread's *root* activation
        /// (it drains the queue at its next delivery point there) instead
        /// of requiring the tip.
        anchor: bool,
        /// The probe was a unicast sent on a location-cache hint rather
        /// than part of a locator wave. A "not here" receipt for a hinted
        /// probe invalidates the cache entry, and hinted probes may chase
        /// a bounded number of forwarding hops even under the broadcast
        /// and multicast locators.
        hinted: bool,
    },
    /// Receipt for a `DeliverThread` probe.
    DeliverReceipt {
        /// Correlation id.
        delivery_id: u64,
        /// Found / not-here / shed-by-mailbox.
        verdict: ReceiptVerdict,
    },
    /// Event for a (possibly passive) object, routed to its home node.
    DeliverObject {
        /// The event.
        event: WireEvent,
        /// Target object.
        object: ObjectId,
    },
    /// A handler resumed a synchronous raiser (paper §5.3: synchronous
    /// send blocks "until it is explicitly resumed by a handler").
    SyncResume {
        /// The blocked raise's event seq.
        seq: u64,
        /// Target thread that is blocked (for routing to its activation).
        raiser: ThreadId,
        /// Verdict passed back to the raiser.
        verdict: Value,
    },
    /// Orderly shutdown of the node's kernel loop.
    Shutdown,
}

impl fmt::Debug for KernelMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelMessage::Invoke { object, entry, .. } => {
                write!(f, "Invoke({object}::{entry})")
            }
            KernelMessage::InvokeReply { call_id, .. } => write!(f, "InvokeReply(#{call_id})"),
            KernelMessage::Dsm(m) => write!(f, "Dsm({m:?})"),
            KernelMessage::DeliverThread { event, target, .. } => {
                write!(f, "DeliverThread({} -> {target})", event.name)
            }
            KernelMessage::DeliverReceipt { verdict, .. } => {
                write!(f, "DeliverReceipt({verdict:?})")
            }
            KernelMessage::DeliverObject { event, object } => {
                write!(f, "DeliverObject({} -> {object})", event.name)
            }
            KernelMessage::SyncResume { seq, .. } => write!(f, "SyncResume(#{seq})"),
            KernelMessage::Shutdown => f.write_str("Shutdown"),
        }
    }
}

impl WireMessage for KernelMessage {
    fn wire_size(&self) -> usize {
        match self {
            KernelMessage::Invoke { args, entry, .. } => 128 + entry.len() + args.wire_size(),
            KernelMessage::InvokeReply { result, .. } => {
                128 + match result {
                    Ok(v) => v.wire_size(),
                    Err(_) => 32,
                }
            }
            KernelMessage::Dsm(m) => m.wire_size(),
            KernelMessage::DeliverThread { event, .. } => event.wire_size(),
            KernelMessage::DeliverReceipt { .. } => 64,
            KernelMessage::DeliverObject { event, .. } => event.wire_size(),
            KernelMessage::SyncResume { verdict, .. } => 64 + verdict.wire_size(),
            KernelMessage::Shutdown => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventName, SystemEvent};

    #[test]
    fn debug_is_compact() {
        let msg = KernelMessage::DeliverReceipt {
            delivery_id: 1,
            verdict: ReceiptVerdict::Found(NodeId(2)),
        };
        assert_eq!(format!("{msg:?}"), "DeliverReceipt(Found(NodeId(2)))");
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = KernelMessage::Invoke {
            call_id: 1,
            reply_to: NodeId(0),
            object: ObjectId::new(NodeId(0), 1),
            entry: "e".into(),
            args: Value::Null,
            attrs: ThreadAttributes::new(ThreadId::new(NodeId(0), 1), NodeId(0)),
            depth: 0,
        };
        let big = KernelMessage::Invoke {
            call_id: 1,
            reply_to: NodeId(0),
            object: ObjectId::new(NodeId(0), 1),
            entry: "e".into(),
            args: Value::from(vec![0u8; 500]),
            attrs: ThreadAttributes::new(ThreadId::new(NodeId(0), 1), NodeId(0)),
            depth: 0,
        };
        assert!(big.wire_size() >= small.wire_size() + 500);
        let ev = WireEvent {
            name: EventName::System(SystemEvent::Timer),
            payload: Value::Null,
            raiser: None,
            raiser_node: NodeId(0),
            seq: 0,
            sync: false,
            t_raise_ns: 0,
            attrs: None,
            deadline_ns: None,
        };
        assert!(
            KernelMessage::DeliverThread {
                event: ev,
                target: ThreadId::new(NodeId(0), 1),
                origin: NodeId(0),
                delivery_id: 0,
                hops: 0,
                anchor: false,
                hinted: false,
            }
            .wire_size()
                >= 96
        );
    }
}
