//! The kernel's error type.

use crate::{ObjectId, ThreadId};
use doct_dsm::DsmError;
use doct_net::NodeId;
use std::error::Error;
use std::fmt;

/// Errors surfaced by kernel operations and object invocations.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// The object is not registered anywhere in the cluster.
    UnknownObject(ObjectId),
    /// The object's class has no such entry point.
    UnknownEntry {
        /// Target object.
        object: ObjectId,
        /// Entry point name that failed to resolve.
        entry: String,
    },
    /// The class name is not registered.
    UnknownClass(String),
    /// The thread could not be found in the cluster.
    UnknownThread(ThreadId),
    /// A node id out of range.
    UnknownNode(NodeId),
    /// The invoked entry point (or a handler it ran) failed.
    InvocationFailed(String),
    /// The logical thread was terminated by a `TERMINATE` event; frames
    /// unwind with this error (running chained cleanup handlers on the
    /// way, see the event facility).
    Terminated,
    /// The invocation in progress was aborted by an `ABORT` event posted
    /// to one of the objects on the calling chain (§6.3).
    Aborted(String),
    /// An event-facility error (registration, routing, delivery).
    Event(String),
    /// Underlying DSM failure.
    Dsm(DsmError),
    /// An operation timed out (lost messages, dead peers).
    Timeout(String),
    /// The failure detector declared the peer node dead (heartbeat
    /// silence or exhausted retransmissions) while we were waiting on it.
    NodeUnreachable(NodeId),
    /// Object state exceeded its DSM segment.
    StateTooLarge {
        /// Object whose state overflowed.
        object: ObjectId,
        /// Encoded size of the state.
        need: usize,
        /// Capacity of the state segment.
        capacity: usize,
    },
    /// Malformed argument to a kernel call.
    InvalidArgument(String),
    /// The cluster is shutting down.
    ShuttingDown,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::UnknownObject(o) => write!(f, "unknown object {o}"),
            KernelError::UnknownEntry { object, entry } => {
                write!(f, "object {object} has no entry point {entry:?}")
            }
            KernelError::UnknownClass(c) => write!(f, "unknown object class {c:?}"),
            KernelError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            KernelError::UnknownNode(n) => write!(f, "unknown node {n}"),
            KernelError::InvocationFailed(msg) => write!(f, "invocation failed: {msg}"),
            KernelError::Terminated => f.write_str("thread terminated"),
            KernelError::Aborted(msg) => write!(f, "invocation aborted: {msg}"),
            KernelError::Event(msg) => write!(f, "event facility error: {msg}"),
            KernelError::Dsm(e) => write!(f, "dsm error: {e}"),
            KernelError::Timeout(what) => write!(f, "timed out: {what}"),
            KernelError::NodeUnreachable(n) => {
                write!(f, "node {n} unreachable (failure detector verdict)")
            }
            KernelError::StateTooLarge {
                object,
                need,
                capacity,
            } => write!(
                f,
                "state of {object} needs {need} bytes, segment holds {capacity}"
            ),
            KernelError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            KernelError::ShuttingDown => f.write_str("cluster shutting down"),
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Dsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DsmError> for KernelError {
    fn from(e: DsmError) -> Self {
        KernelError::Dsm(e)
    }
}

impl From<crate::value::DecodeError> for KernelError {
    fn from(e: crate::value::DecodeError) -> Self {
        KernelError::InvocationFailed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doct_dsm::SegmentId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = KernelError::UnknownEntry {
            object: ObjectId::new(NodeId(0), 1),
            entry: "work".into(),
        };
        assert_eq!(e.to_string(), "object obj0.1 has no entry point \"work\"");
        assert!(KernelError::Terminated.to_string().contains("terminated"));
    }

    #[test]
    fn dsm_errors_convert_and_chain() {
        let inner = DsmError::UnknownSegment(SegmentId::new(NodeId(0), 1));
        let e: KernelError = inner.clone().into();
        assert_eq!(e, KernelError::Dsm(inner));
        assert!(e.source().is_some());
        assert!(KernelError::Terminated.source().is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
