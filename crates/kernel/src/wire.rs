//! [`WireCodec`] for [`KernelMessage`] — what lets a kernel cluster run
//! over the real-socket UDP fabric (`DOCT_FABRIC=udp`), one node per OS
//! process.
//!
//! Only the message variants that are meaningful *between* OS processes
//! serialize. `Invoke`/`InvokeReply` carry live closure state through
//! [`crate::Value`]-typed arguments plus extension-laden attributes, and
//! `Dsm` coherence traffic assumes the in-process shared-memory
//! simulation — all three are rejected with
//! [`CodecError::Unsupported`] at encode time (a typed error the fabric
//! counts in `net.codec_errors`; never a panic). The event-delivery
//! plane — `DeliverThread`, `DeliverReceipt`, `DeliverObject`,
//! `SyncResume`, `Shutdown` — is fully serializable, which is exactly
//! the surface the paper's event facility needs across machines.
//!
//! Attribute records serialize their *portable* slice (identity, group,
//! I/O channel, consistency label, timers, key/value memory). The typed
//! extension bag is process-local by construction (trait objects) and is
//! dropped on the wire; the receiving facility rebuilds registries from
//! its own defaults, matching §6.1's surrogate-thread semantics.
//!
//! Every decode path returns a typed [`CodecError`] on malformed input —
//! a hostile or corrupted datagram must never panic the local kernel.

use crate::attributes::TimerSpec;
use crate::{
    EventName, KernelMessage, ObjectId, ReceiptVerdict, SystemEvent, ThreadAttributes,
    ThreadGroupId, ThreadId, Value, WireEvent,
};
use doct_net::{Bytes, CodecError, NodeId, WireCodec};
use std::time::Duration;

// ---------------------------------------------------------------------
// Message tags.
// ---------------------------------------------------------------------

const TAG_DELIVER_THREAD: u8 = 0;
const TAG_DELIVER_RECEIPT: u8 = 1;
const TAG_DELIVER_OBJECT: u8 = 2;
const TAG_SYNC_RESUME: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;

// ---------------------------------------------------------------------
// Write helpers (all big-endian, matching the frame codec).
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_node(out: &mut Vec<u8>, n: NodeId) {
    put_u32(out, n.0);
}

fn put_thread(out: &mut Vec<u8>, t: ThreadId) {
    put_node(out, t.root);
    put_u32(out, t.seq);
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), CodecError> {
    let len = u32::try_from(s.len()).map_err(|_| CodecError::Unsupported("string too long"))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), CodecError> {
    let bytes = v.encode();
    let len = u32::try_from(bytes.len()).map_err(|_| CodecError::Unsupported("value too large"))?;
    put_u32(out, len);
    out.extend_from_slice(&bytes);
    Ok(())
}

fn put_opt<T: ?Sized>(
    out: &mut Vec<u8>,
    v: Option<&T>,
    put: impl FnOnce(&mut Vec<u8>, &T) -> Result<(), CodecError>,
) -> Result<(), CodecError> {
    match v {
        None => {
            out.push(0);
            Ok(())
        }
        Some(v) => {
            out.push(1);
            put(out, v)
        }
    }
}

fn put_event_name(out: &mut Vec<u8>, name: &EventName) -> Result<(), CodecError> {
    match name {
        EventName::System(s) => {
            let idx = SystemEvent::ALL
                .iter()
                .position(|e| e == s)
                .ok_or(CodecError::Unsupported("system event outside ALL"))?;
            out.push(0);
            out.push(idx as u8);
            Ok(())
        }
        EventName::User(u) => {
            out.push(1);
            put_str(out, u)
        }
    }
}

fn put_attrs(out: &mut Vec<u8>, attrs: &ThreadAttributes) -> Result<(), CodecError> {
    put_thread(out, attrs.thread);
    put_node(out, attrs.creator);
    put_opt(out, attrs.group.as_ref(), |out, g| {
        put_u64(out, g.0);
        Ok(())
    })?;
    put_opt(out, attrs.io_channel.as_deref(), put_str)?;
    put_opt(out, attrs.consistency_label.as_deref(), |out, s| {
        put_str(out, s)
    })?;
    let timers = u32::try_from(attrs.timers.len())
        .map_err(|_| CodecError::Unsupported("too many timers"))?;
    put_u32(out, timers);
    for t in &attrs.timers {
        let ns = u64::try_from(t.period.as_nanos())
            .map_err(|_| CodecError::Unsupported("timer period overflows u64 ns"))?;
        put_u64(out, ns);
        put_value(out, &t.payload)?;
        put_u64(out, t.id);
    }
    let values = u32::try_from(attrs.values.len())
        .map_err(|_| CodecError::Unsupported("too many values"))?;
    put_u32(out, values);
    for (k, v) in &attrs.values {
        put_str(out, k)?;
        put_value(out, v)?;
    }
    Ok(())
}

fn put_event(out: &mut Vec<u8>, ev: &WireEvent) -> Result<(), CodecError> {
    put_event_name(out, &ev.name)?;
    put_value(out, &ev.payload)?;
    put_opt(out, ev.raiser.as_ref(), |out, t| {
        put_thread(out, *t);
        Ok(())
    })?;
    put_node(out, ev.raiser_node);
    put_u64(out, ev.seq);
    put_bool(out, ev.sync);
    put_u64(out, ev.t_raise_ns);
    put_opt(out, ev.attrs.as_ref(), put_attrs)?;
    put_opt(out, ev.deadline_ns.as_ref(), |out, ns| {
        put_u64(out, *ns);
        Ok(())
    })
}

fn put_verdict(out: &mut Vec<u8>, v: &ReceiptVerdict) {
    match v {
        ReceiptVerdict::Found(n) => {
            out.push(0);
            put_node(out, *n);
        }
        ReceiptVerdict::NotHere => out.push(1),
        ReceiptVerdict::Overloaded(n) => {
            out.push(2);
            put_node(out, *n);
        }
    }
}

// ---------------------------------------------------------------------
// Read side: a bounds-checked cursor over the zero-copy payload view.
// ---------------------------------------------------------------------

struct Rd<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a Bytes) -> Self {
        Rd { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            need: n,
            have: self.remaining(),
        })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf.as_slice()[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Zero-copy sub-view of the payload (shares the datagram's backing
    /// allocation), for nested [`Value::decode_shared`].
    fn take_view(&mut self, n: usize) -> Result<Bytes, CodecError> {
        let start = self.pos;
        self.take(n)?;
        Ok(self.buf.slice(start..start + n))
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b: [u8; 4] = self.take(4)?.try_into().expect("length checked");
        Ok(u32::from_be_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b: [u8; 8] = self.take(8)?.try_into().expect("length checked");
        Ok(u64::from_be_bytes(b))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Payload("bad bool byte")),
        }
    }

    fn node(&mut self) -> Result<NodeId, CodecError> {
        Ok(NodeId(self.u32()?))
    }

    fn thread(&mut self) -> Result<ThreadId, CodecError> {
        let root = self.node()?;
        let seq = self.u32()?;
        Ok(ThreadId { root, seq })
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Payload("invalid utf-8 string"))
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        let len = self.u32()? as usize;
        let view = self.take_view(len)?;
        Value::decode_shared(&view).map_err(|_| CodecError::Payload("malformed value"))
    }

    fn opt<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            _ => Err(CodecError::Payload("bad option flag")),
        }
    }

    fn event_name(&mut self) -> Result<EventName, CodecError> {
        match self.u8()? {
            0 => {
                let idx = self.u8()? as usize;
                SystemEvent::ALL
                    .get(idx)
                    .copied()
                    .map(EventName::System)
                    .ok_or(CodecError::Payload("unknown system event"))
            }
            1 => Ok(EventName::User(self.str()?)),
            _ => Err(CodecError::Payload("bad event-name tag")),
        }
    }

    fn attrs(&mut self) -> Result<ThreadAttributes, CodecError> {
        let thread = self.thread()?;
        let creator = self.node()?;
        let mut attrs = ThreadAttributes::new(thread, creator);
        attrs.group = self.opt(|rd| Ok(ThreadGroupId(rd.u64()?)))?;
        attrs.io_channel = self.opt(Rd::str)?;
        attrs.consistency_label = self.opt(Rd::str)?;
        let timers = self.u32()? as usize;
        for _ in 0..timers {
            let period = Duration::from_nanos(self.u64()?);
            let payload = self.value()?;
            let id = self.u64()?;
            attrs.timers.push(TimerSpec {
                period,
                payload,
                id,
            });
        }
        let values = self.u32()? as usize;
        for _ in 0..values {
            let k = self.str()?;
            let v = self.value()?;
            attrs.values.insert(k, v);
        }
        Ok(attrs)
    }

    fn event(&mut self) -> Result<WireEvent, CodecError> {
        Ok(WireEvent {
            name: self.event_name()?,
            payload: self.value()?,
            raiser: self.opt(Rd::thread)?,
            raiser_node: self.node()?,
            seq: self.u64()?,
            sync: self.bool()?,
            t_raise_ns: self.u64()?,
            attrs: self.opt(Rd::attrs)?,
            deadline_ns: self.opt(Rd::u64)?,
        })
    }

    fn verdict(&mut self) -> Result<ReceiptVerdict, CodecError> {
        match self.u8()? {
            0 => Ok(ReceiptVerdict::Found(self.node()?)),
            1 => Ok(ReceiptVerdict::NotHere),
            2 => Ok(ReceiptVerdict::Overloaded(self.node()?)),
            _ => Err(CodecError::Payload("bad verdict tag")),
        }
    }
}

impl WireCodec for KernelMessage {
    fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), CodecError> {
        match self {
            KernelMessage::Invoke { .. } => Err(CodecError::Unsupported(
                "Invoke carries closure-typed state; sim fabric only",
            )),
            KernelMessage::InvokeReply { .. } => Err(CodecError::Unsupported(
                "InvokeReply carries closure-typed state; sim fabric only",
            )),
            KernelMessage::Dsm(_) => Err(CodecError::Unsupported(
                "DSM coherence assumes the in-process simulation",
            )),
            KernelMessage::DeliverThread {
                event,
                target,
                origin,
                delivery_id,
                hops,
                anchor,
                hinted,
            } => {
                out.push(TAG_DELIVER_THREAD);
                put_event(out, event)?;
                put_thread(out, *target);
                put_node(out, *origin);
                put_u64(out, *delivery_id);
                put_u32(out, *hops);
                put_bool(out, *anchor);
                put_bool(out, *hinted);
                Ok(())
            }
            KernelMessage::DeliverReceipt {
                delivery_id,
                verdict,
            } => {
                out.push(TAG_DELIVER_RECEIPT);
                put_u64(out, *delivery_id);
                put_verdict(out, verdict);
                Ok(())
            }
            KernelMessage::DeliverObject { event, object } => {
                out.push(TAG_DELIVER_OBJECT);
                put_event(out, event)?;
                put_u64(out, object.0);
                Ok(())
            }
            KernelMessage::SyncResume {
                seq,
                raiser,
                verdict,
            } => {
                out.push(TAG_SYNC_RESUME);
                put_u64(out, *seq);
                put_thread(out, *raiser);
                put_value(out, verdict)
            }
            KernelMessage::Shutdown => {
                out.push(TAG_SHUTDOWN);
                Ok(())
            }
        }
    }

    fn decode_payload(buf: &Bytes) -> Result<Self, CodecError> {
        let mut rd = Rd::new(buf);
        let msg = match rd.u8()? {
            TAG_DELIVER_THREAD => {
                let event = rd.event()?;
                let target = rd.thread()?;
                let origin = rd.node()?;
                let delivery_id = rd.u64()?;
                let hops = rd.u32()?;
                let anchor = rd.bool()?;
                let hinted = rd.bool()?;
                KernelMessage::DeliverThread {
                    event,
                    target,
                    origin,
                    delivery_id,
                    hops,
                    anchor,
                    hinted,
                }
            }
            TAG_DELIVER_RECEIPT => KernelMessage::DeliverReceipt {
                delivery_id: rd.u64()?,
                verdict: rd.verdict()?,
            },
            TAG_DELIVER_OBJECT => KernelMessage::DeliverObject {
                event: rd.event()?,
                object: ObjectId(rd.u64()?),
            },
            TAG_SYNC_RESUME => KernelMessage::SyncResume {
                seq: rd.u64()?,
                raiser: rd.thread()?,
                verdict: rd.value()?,
            },
            TAG_SHUTDOWN => KernelMessage::Shutdown,
            tag => return Err(CodecError::BadKind(tag)),
        };
        if rd.remaining() != 0 {
            return Err(CodecError::Payload("trailing bytes after message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelError;
    use doct_dsm::{DsmMessage, FaultKind, PageId, SegmentId};

    fn roundtrip(msg: &KernelMessage) -> KernelMessage {
        let mut out = Vec::new();
        msg.encode_payload(&mut out).expect("encode");
        KernelMessage::decode_payload(&Bytes::from_vec(out)).expect("decode")
    }

    fn sample_event() -> WireEvent {
        let mut attrs = ThreadAttributes::new(ThreadId::new(NodeId(2), 7), NodeId(2));
        attrs.group = Some(ThreadGroupId::new(NodeId(2), 1));
        attrs.io_channel = Some("tty0".into());
        attrs.consistency_label = Some("serial".into());
        attrs.timers.push(TimerSpec {
            period: Duration::from_millis(250),
            payload: Value::from("tick"),
            id: 42,
        });
        attrs.values.insert("budget".into(), Value::Int(9));
        WireEvent {
            name: EventName::user("COMMIT"),
            payload: Value::from(vec![1u8, 2, 3]),
            raiser: Some(ThreadId::new(NodeId(2), 7)),
            raiser_node: NodeId(2),
            seq: 99,
            sync: true,
            t_raise_ns: 123_456,
            attrs: Some(attrs),
            deadline_ns: Some(777),
        }
    }

    #[test]
    fn deliver_thread_roundtrips_with_full_attributes() {
        let msg = KernelMessage::DeliverThread {
            event: sample_event(),
            target: ThreadId::new(NodeId(1), 3),
            origin: NodeId(0),
            delivery_id: 555,
            hops: 2,
            anchor: true,
            hinted: true,
        };
        let KernelMessage::DeliverThread {
            event,
            target,
            origin,
            delivery_id,
            hops,
            anchor,
            hinted,
        } = roundtrip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(
            (target, origin, delivery_id, hops, anchor, hinted),
            (ThreadId::new(NodeId(1), 3), NodeId(0), 555, 2, true, true)
        );
        assert_eq!(event.name, EventName::user("COMMIT"));
        assert_eq!(event.payload, Value::from(vec![1u8, 2, 3]));
        assert_eq!(event.raiser, Some(ThreadId::new(NodeId(2), 7)));
        assert_eq!(
            (event.seq, event.sync, event.t_raise_ns),
            (99, true, 123_456)
        );
        assert_eq!(event.deadline_ns, Some(777));
        let attrs = event.attrs.expect("attrs travel");
        assert_eq!(attrs.thread, ThreadId::new(NodeId(2), 7));
        assert_eq!(attrs.group, Some(ThreadGroupId::new(NodeId(2), 1)));
        assert_eq!(attrs.io_channel.as_deref(), Some("tty0"));
        assert_eq!(attrs.consistency_label.as_deref(), Some("serial"));
        assert_eq!(attrs.timers.len(), 1);
        assert_eq!(attrs.timers[0].period, Duration::from_millis(250));
        assert_eq!(attrs.timers[0].id, 42);
        assert_eq!(attrs.values.get("budget"), Some(&Value::Int(9)));
    }

    #[test]
    fn system_events_and_sparse_options_roundtrip() {
        for sys in SystemEvent::ALL {
            let msg = KernelMessage::DeliverObject {
                event: WireEvent {
                    name: EventName::System(sys),
                    payload: Value::Null,
                    raiser: None,
                    raiser_node: NodeId(0),
                    seq: 1,
                    sync: false,
                    t_raise_ns: 0,
                    attrs: None,
                    deadline_ns: None,
                },
                object: ObjectId::new(NodeId(3), 5),
            };
            let KernelMessage::DeliverObject { event, object } = roundtrip(&msg) else {
                panic!("wrong variant");
            };
            assert_eq!(event.name, EventName::System(sys));
            assert_eq!(object, ObjectId::new(NodeId(3), 5));
        }
    }

    #[test]
    fn receipts_resume_and_shutdown_roundtrip() {
        for verdict in [
            ReceiptVerdict::Found(NodeId(4)),
            ReceiptVerdict::NotHere,
            ReceiptVerdict::Overloaded(NodeId(2)),
        ] {
            let msg = KernelMessage::DeliverReceipt {
                delivery_id: 31,
                verdict,
            };
            let KernelMessage::DeliverReceipt {
                delivery_id,
                verdict: got,
            } = roundtrip(&msg)
            else {
                panic!("wrong variant");
            };
            assert_eq!((delivery_id, got), (31, verdict));
        }
        let msg = KernelMessage::SyncResume {
            seq: 8,
            raiser: ThreadId::new(NodeId(0), 2),
            verdict: Value::from("resume"),
        };
        let KernelMessage::SyncResume {
            seq,
            raiser,
            verdict,
        } = roundtrip(&msg)
        else {
            panic!("wrong variant");
        };
        assert_eq!(
            (seq, raiser, verdict),
            (8, ThreadId::new(NodeId(0), 2), Value::from("resume"))
        );
        assert!(matches!(
            roundtrip(&KernelMessage::Shutdown),
            KernelMessage::Shutdown
        ));
    }

    #[test]
    fn in_process_only_variants_are_typed_unsupported() {
        let mut out = Vec::new();
        let invoke = KernelMessage::Invoke {
            call_id: 1,
            reply_to: NodeId(0),
            object: ObjectId::new(NodeId(0), 1),
            entry: "e".into(),
            args: Value::Null,
            attrs: ThreadAttributes::new(ThreadId::new(NodeId(0), 1), NodeId(0)),
            depth: 0,
        };
        assert!(matches!(
            invoke.encode_payload(&mut out),
            Err(CodecError::Unsupported(_))
        ));
        let reply = KernelMessage::InvokeReply {
            call_id: 1,
            result: Err(KernelError::NodeUnreachable(NodeId(1))),
            attrs: ThreadAttributes::new(ThreadId::new(NodeId(0), 1), NodeId(0)),
        };
        assert!(matches!(
            reply.encode_payload(&mut out),
            Err(CodecError::Unsupported(_))
        ));
        let dsm = KernelMessage::Dsm(DsmMessage::FaultRequest {
            page: PageId {
                segment: SegmentId(0),
                index: 0,
            },
            kind: FaultKind::Read,
            from: NodeId(0),
        });
        assert!(matches!(
            dsm.encode_payload(&mut out),
            Err(CodecError::Unsupported(_))
        ));
    }

    #[test]
    fn truncated_and_garbage_kernel_payloads_never_panic() {
        let mut out = Vec::new();
        KernelMessage::DeliverThread {
            event: sample_event(),
            target: ThreadId::new(NodeId(1), 3),
            origin: NodeId(0),
            delivery_id: 1,
            hops: 0,
            anchor: false,
            hinted: false,
        }
        .encode_payload(&mut out)
        .expect("encode");
        for cut in 0..out.len() {
            assert!(
                KernelMessage::decode_payload(&Bytes::from_vec(out[..cut].to_vec())).is_err(),
                "cut at {cut} must be a typed error"
            );
        }
        // Pseudo-random garbage (deterministic LCG, no wall clock).
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for len in [1usize, 7, 64, 512] {
            let mut garbage = Vec::with_capacity(len);
            for _ in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                garbage.push((x >> 56) as u8);
            }
            let _ = KernelMessage::decode_payload(&Bytes::from_vec(garbage));
        }
        // Trailing bytes after a valid message are rejected.
        out.push(0);
        assert!(matches!(
            KernelMessage::decode_payload(&Bytes::from_vec(out)),
            Err(CodecError::Payload(_))
        ));
    }

    #[test]
    fn decoded_payload_bytes_are_views_of_the_datagram() {
        let mut out = Vec::new();
        KernelMessage::DeliverObject {
            event: WireEvent {
                name: EventName::System(SystemEvent::Timer),
                payload: Value::from(vec![9u8; 64]),
                raiser: None,
                raiser_node: NodeId(0),
                seq: 3,
                sync: false,
                t_raise_ns: 0,
                attrs: None,
                deadline_ns: None,
            },
            object: ObjectId::new(NodeId(0), 1),
        }
        .encode_payload(&mut out)
        .expect("encode");
        let datagram = Bytes::from_vec(out);
        let msg = KernelMessage::decode_payload(&datagram).expect("decode");
        let KernelMessage::DeliverObject { event, .. } = msg else {
            panic!("wrong variant");
        };
        let Value::Bytes(b) = event.payload else {
            panic!("payload kept its Bytes shape");
        };
        assert_eq!(b.as_slice(), &[9u8; 64][..]);
        assert!(
            Bytes::ptr_eq(&b, &datagram),
            "decoded bytes share the datagram's backing allocation"
        );
    }
}
