//! Per-reactor work queues with an idle-steal path (DESIGN.md §3f).
//!
//! With `KernelConfig::reactors > 1` the kernel-loop thread becomes a
//! *router*: it drains the node's wire mailbox and distributes messages
//! across N reactor workers, each owning one [`StealQueue`]. Receipts are
//! routed by delivery-table shard and thread deliveries by target thread,
//! so a shard's receipt processing and a thread's mailbox pushes stay on
//! one reactor — and an idle reactor steals from the back of a loaded
//! sibling's queue instead of spinning, so a skewed workload (every raise
//! targeting one hot thread) still uses every core.
//!
//! The queue is a plain `Mutex<VecDeque>`; pop takes from the front,
//! steal takes a run from the back, and [`StealQueue::push`] reports
//! whether the queue was empty so the router only wakes an owner that
//! might actually be parked (notify-on-empty-transition — the same
//! lost-wakeup protocol the mailbox model checks). Exactly-once handoff
//! between a local pop and a concurrent steal, plus the no-lost-wakeup
//! claim, are proved over every 3-thread interleaving by the
//! `reactor-steal-handoff` schedule model in `crates/analyze`.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A single-owner work queue that idle siblings may steal from.
pub struct StealQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Default for StealQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> StealQueue<T> {
    /// Fresh, empty queue.
    pub fn new() -> Self {
        StealQueue {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Append one item. Returns `true` when the queue was empty before —
    /// the only case where the owner could be parked, so the only case
    /// the router must wake it (notify-on-empty-transition).
    pub fn push(&self, item: T) -> bool {
        let mut q = self.items.lock();
        let was_empty = q.is_empty();
        q.push_back(item);
        was_empty
    }

    /// Owner-side dequeue from the front.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.items.lock();
        q.pop_front()
    }

    /// Owner-side batch dequeue: up to `max` items from the front, taken
    /// under one lock hold and processed outside it.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut q = self.items.lock();
        let n = q.len().min(max);
        q.drain(..n).collect()
    }

    /// Thief-side dequeue: up to `max` items from the *back* (the
    /// youngest work, the least likely to be mid-flight at the owner),
    /// preserving their relative order.
    pub fn steal(&self, max: usize) -> Vec<T> {
        let mut q = self.items.lock();
        let n = q.len().min(max);
        let at = q.len() - n;
        q.split_off(at).into_iter().collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reports_the_empty_transition_only() {
        let q = StealQueue::new();
        assert!(q.push(1), "first push finds it empty");
        assert!(!q.push(2), "second push must not re-wake");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.push(3), "empty again after draining");
    }

    #[test]
    fn pop_front_steal_back_never_overlap() {
        let q = StealQueue::new();
        for i in 0..10 {
            let _ = q.push(i);
        }
        let stolen = q.steal(4);
        assert_eq!(stolen, vec![6, 7, 8, 9], "thief takes the youngest run");
        let local = q.pop_batch(4);
        assert_eq!(local, vec![0, 1, 2, 3], "owner keeps FIFO order");
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal(10), vec![4, 5], "steal is bounded by depth");
        assert!(q.is_empty());
        assert!(q.steal(3).is_empty());
        assert!(q.pop_batch(3).is_empty());
    }
}
