//! Bounded per-thread priority mailbox (overload control, ROADMAP item 5).
//!
//! Replaces the unbounded pending-event queue of an activation with three
//! priority lanes:
//!
//! * **control** — unbounded FIFO; TERMINATE/QUIT and the other system
//!   events preempt everything and are never shed, so a TIMER flood can
//!   no longer starve a kill (the paper's §6.3 teardown stays live under
//!   saturation);
//! * **timer** — bounded, ordered by usefulness deadline; a tick whose
//!   deadline is near jumps the USER lane, a tick past capacity is shed
//!   (the next tick supersedes it);
//! * **user** — bounded FIFO; past capacity the raise is shed.
//!
//! Admission is an explicit, typed outcome ([`Admission::Shed`]): the
//! kernel turns it into [`crate::DeliveryStatus::Overloaded`] so the
//! delivery ledger accounts every shed raise — nothing is silently
//! dropped.
//!
//! The mailbox maintains its total depth in an [`AtomicUsize`] shared via
//! [`Mailbox::depth_handle`]. The kernel's sweep samples that atomic
//! **without** taking the activation lock, so a sweep can never observe a
//! mailbox mid-resize (and never contends with delivery under load).

use crate::event::{Lane, WireEvent};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for the bounded priority mailbox, part of
/// [`crate::KernelConfig`] (one policy per cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxConfig {
    /// Capacity of the TIMER lane; a tick past it is shed.
    pub timer_capacity: usize,
    /// Capacity of the USER lane; a raise past it is shed.
    pub user_capacity: usize,
    /// Usefulness horizon stamped on timer-lane events at raise: the
    /// event's deadline is `raise time + timer_deadline`.
    pub timer_deadline: Duration,
    /// A timer whose deadline is within this of "now" jumps the USER
    /// lane at the next delivery point.
    pub near_deadline: Duration,
    /// How long a backpressure signal from an overloaded peer keeps the
    /// sender shedding sheddable-lane raises at the source.
    pub backpressure_hold: Duration,
}

impl Default for MailboxConfig {
    fn default() -> Self {
        MailboxConfig {
            // Generous: ordinary workloads never fill these; only a
            // genuine flood (E13) trips admission control.
            timer_capacity: 1024,
            user_capacity: 1024,
            timer_deadline: Duration::from_millis(100),
            near_deadline: Duration::from_millis(10),
            backpressure_hold: Duration::from_millis(100),
        }
    }
}

/// Outcome of offering an event to a bounded mailbox.
#[must_use = "a Shed admission must surface as DeliveryStatus::Overloaded, never vanish"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The event was queued for the next delivery point.
    Stored,
    /// The named (sheddable) lane was at capacity; the event was not
    /// queued and the raiser must be told `Overloaded`.
    Shed(Lane),
}

impl Admission {
    /// True if the event was queued.
    pub fn is_stored(self) -> bool {
        self == Admission::Stored
    }
}

/// Timer-lane entry: min-ordered by deadline, FIFO among equal deadlines
/// (the arrival index breaks ties, so two ticks with one deadline pop in
/// raise order).
struct TimerSlot {
    deadline_ns: u64,
    arrival: u64,
    event: WireEvent,
}

impl PartialEq for TimerSlot {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_ns == other.deadline_ns && self.arrival == other.arrival
    }
}
impl Eq for TimerSlot {}
impl PartialOrd for TimerSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline (then earliest arrival) on top.
        other
            .deadline_ns
            .cmp(&self.deadline_ns)
            .then(other.arrival.cmp(&self.arrival))
    }
}

/// The bounded priority mailbox. Not internally synchronized: it lives
/// behind the activation lock (or the model harness's mutex); only the
/// depth counter is shared lock-free.
pub struct Mailbox {
    config: MailboxConfig,
    control: VecDeque<WireEvent>,
    timer: BinaryHeap<TimerSlot>,
    user: VecDeque<WireEvent>,
    depth: Arc<AtomicUsize>,
    arrivals: u64,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox")
            .field("control", &self.control.len())
            .field("timer", &self.timer.len())
            .field("user", &self.user.len())
            .finish()
    }
}

impl Mailbox {
    /// Empty mailbox with the given bounds.
    pub fn new(config: MailboxConfig) -> Self {
        Mailbox {
            config,
            control: VecDeque::new(),
            timer: BinaryHeap::new(),
            user: VecDeque::new(),
            depth: Arc::new(AtomicUsize::new(0)),
            arrivals: 0,
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> MailboxConfig {
        self.config
    }

    /// Shared handle to the total depth, updated on every push/pop. Safe
    /// to read without holding the lock that guards the mailbox itself —
    /// this is the kernel sweep's atomic depth snapshot.
    pub fn depth_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.depth)
    }

    /// Total queued events across all lanes.
    pub fn len(&self) -> usize {
        self.control.len() + self.timer.len() + self.user.len()
    }

    /// True when no event is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued events in `lane`.
    pub fn lane_len(&self, lane: Lane) -> usize {
        match lane {
            Lane::Control => self.control.len(),
            Lane::Timer => self.timer.len(),
            Lane::User => self.user.len(),
        }
    }

    /// Offer `event` for admission. Control-lane events are always
    /// stored; timer/user events are shed when their lane is full.
    pub fn push(&mut self, event: WireEvent) -> Admission {
        let lane = Lane::classify(&event.name);
        match lane {
            Lane::Control => self.control.push_back(event),
            Lane::Timer => {
                if self.timer.len() >= self.config.timer_capacity {
                    return Admission::Shed(Lane::Timer);
                }
                let deadline_ns = event.deadline_ns.unwrap_or(u64::MAX);
                self.arrivals += 1;
                self.timer.push(TimerSlot {
                    deadline_ns,
                    arrival: self.arrivals,
                    event,
                });
            }
            Lane::User => {
                if self.user.len() >= self.config.user_capacity {
                    return Admission::Shed(Lane::User);
                }
                self.user.push_back(event);
            }
        }
        self.depth.fetch_add(1, Ordering::Relaxed);
        Admission::Stored
    }

    /// Take the highest-priority event: control first, then a timer whose
    /// deadline is due within [`MailboxConfig::near_deadline`] of
    /// `now_ns`, then user FIFO, then remaining timers (earliest deadline
    /// first).
    pub fn pop(&mut self, now_ns: u64) -> Option<WireEvent> {
        let event = if let Some(e) = self.control.pop_front() {
            e
        } else if self
            .timer
            .peek()
            .is_some_and(|t| t.deadline_ns <= now_ns.saturating_add(self.near_deadline_ns()))
        {
            self.timer.pop().expect("peeked").event
        } else if let Some(e) = self.user.pop_front() {
            e
        } else {
            self.timer.pop()?.event
        };
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(event)
    }

    fn near_deadline_ns(&self) -> u64 {
        self.config
            .near_deadline
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventName, SystemEvent, Value};
    use doct_net::NodeId;

    fn wire(name: EventName, seq: u64, deadline_ns: Option<u64>) -> WireEvent {
        WireEvent {
            name,
            payload: Value::Null,
            raiser: None,
            raiser_node: NodeId(0),
            seq,
            sync: false,
            t_raise_ns: 0,
            attrs: None,
            deadline_ns,
        }
    }

    fn timer(seq: u64, deadline_ns: u64) -> WireEvent {
        wire(
            EventName::System(SystemEvent::Timer),
            seq,
            Some(deadline_ns),
        )
    }

    fn user(seq: u64) -> WireEvent {
        wire(EventName::user("U"), seq, None)
    }

    fn terminate(seq: u64) -> WireEvent {
        wire(EventName::System(SystemEvent::Terminate), seq, None)
    }

    fn tiny() -> MailboxConfig {
        MailboxConfig {
            timer_capacity: 2,
            user_capacity: 2,
            ..MailboxConfig::default()
        }
    }

    #[test]
    fn control_preempts_timer_and_user() {
        let mut m = Mailbox::new(MailboxConfig::default());
        assert!(m.push(user(1)).is_stored());
        assert!(m.push(timer(2, u64::MAX)).is_stored());
        assert!(m.push(terminate(3)).is_stored());
        assert_eq!(m.pop(0).unwrap().seq, 3, "control first");
        assert_eq!(m.pop(0).unwrap().seq, 1, "then user");
        assert_eq!(m.pop(0).unwrap().seq, 2, "then far-deadline timer");
        assert!(m.pop(0).is_none());
    }

    #[test]
    fn control_lane_is_fifo() {
        let mut m = Mailbox::new(MailboxConfig::default());
        for seq in 1..=5 {
            assert!(m.push(terminate(seq)).is_stored());
        }
        for seq in 1..=5 {
            assert_eq!(m.pop(0).unwrap().seq, seq);
        }
    }

    #[test]
    fn near_deadline_timer_jumps_the_user_lane() {
        let mut m = Mailbox::new(MailboxConfig::default());
        let near = m.near_deadline_ns();
        assert!(m.push(user(1)).is_stored());
        assert!(m.push(timer(2, 1_000)).is_stored());
        // At now=0 the timer's deadline (1000ns) is within near_deadline:
        // it preempts the queued user event.
        assert!(near > 1_000);
        assert_eq!(m.pop(0).unwrap().seq, 2);
        assert_eq!(m.pop(0).unwrap().seq, 1);
    }

    #[test]
    fn timers_pop_in_deadline_order_fifo_on_ties() {
        let mut m = Mailbox::new(MailboxConfig::default());
        assert!(m.push(timer(1, 300)).is_stored());
        assert!(m.push(timer(2, 100)).is_stored());
        assert!(m.push(timer(3, 100)).is_stored());
        assert_eq!(m.pop(0).unwrap().seq, 2, "earliest deadline");
        assert_eq!(m.pop(0).unwrap().seq, 3, "FIFO among equal deadlines");
        assert_eq!(m.pop(0).unwrap().seq, 1);
    }

    #[test]
    fn full_sheddable_lanes_shed_with_the_lane_named() {
        let mut m = Mailbox::new(tiny());
        assert!(m.push(user(1)).is_stored());
        assert!(m.push(user(2)).is_stored());
        assert_eq!(m.push(user(3)), Admission::Shed(Lane::User));
        assert!(m.push(timer(4, 1)).is_stored());
        assert!(m.push(timer(5, 2)).is_stored());
        assert_eq!(m.push(timer(6, 3)), Admission::Shed(Lane::Timer));
        assert_eq!(m.len(), 4, "shed events were not queued");
    }

    #[test]
    fn control_lane_never_sheds() {
        let mut m = Mailbox::new(tiny());
        // Saturate both sheddable lanes first.
        for seq in 0..4 {
            let _ = m.push(user(seq));
            let _ = m.push(timer(100 + seq, 1));
        }
        for seq in 0..1000 {
            assert!(
                m.push(terminate(10_000 + seq)).is_stored(),
                "control admission must be unconditional"
            );
        }
        assert_eq!(m.lane_len(Lane::Control), 1000);
    }

    #[test]
    fn depth_handle_tracks_pushes_and_pops_atomically() {
        let mut m = Mailbox::new(tiny());
        let depth = m.depth_handle();
        assert_eq!(depth.load(Ordering::Relaxed), 0);
        assert!(m.push(user(1)).is_stored());
        assert!(m.push(terminate(2)).is_stored());
        assert!(m.push(user(3)).is_stored());
        assert_eq!(m.push(user(4)), Admission::Shed(Lane::User));
        assert_eq!(
            depth.load(Ordering::Relaxed),
            3,
            "shed events never count toward depth"
        );
        let _ = m.pop(0);
        assert_eq!(depth.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn depth_mirror_equals_occupancy_after_every_operation() {
        // Regression pin for the increment-on-Stored-only contract: a shed
        // must leave the mirror untouched, and the mirror must equal the
        // real occupancy after *every* push/pop — the kernel sweep and the
        // per-reactor depth gauges both trust this atomic without taking
        // the activation lock.
        let mut m = Mailbox::new(tiny());
        let depth = m.depth_handle();
        let check = |m: &Mailbox, d: &Arc<AtomicUsize>| {
            assert_eq!(d.load(Ordering::Relaxed), m.len(), "mirror drifted");
        };
        let pushes: Vec<WireEvent> = vec![
            user(1),
            timer(2, 50),
            user(3),
            user(4), // sheds: user lane full at 2
            terminate(5),
            timer(6, 10),
            timer(7, 20), // sheds: timer lane full at 2
        ];
        for e in pushes {
            let _ = m.push(e);
            check(&m, &depth);
        }
        while m.pop(0).is_some() {
            check(&m, &depth);
        }
        assert_eq!(depth.load(Ordering::Relaxed), 0, "drained mailbox");
    }
}
