//! The dynamic value type used for invocation arguments, results, object
//! state, and event payloads — the "parameters of the invocation" carried
//! in thread attributes (paper §2).
//!
//! Includes a compact self-describing binary codec ([`Value::encode`] /
//! [`Value::decode`]) used to store object state in DSM segments.
//!
//! Byte payloads are [`Bytes`] — shared immutable buffers whose clones
//! are refcount bumps. A raised event's payload fans out to N group
//! members, the timer service, and the retransmit queue without ever
//! copying payload bytes (DESIGN.md §3g); [`Value::decode_shared`]
//! extends the zero-copy property through decoding.

use doct_net::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes: a shared immutable buffer, cloned by refcount bump.
    Bytes(Bytes),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map (ordered for determinism).
    Map(BTreeMap<String, Value>),
}

/// Error decoding a [`Value`] from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub(crate) String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value decode error: {}", self.0)
    }
}

impl Error for DecodeError {}

impl Value {
    /// Shorthand for an empty map.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Borrow as bool, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as integer, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as float, accepting ints too.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow as string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as byte slice, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b.as_slice()),
            _ => None,
        }
    }

    /// Borrow the shared buffer itself, if this is a [`Value::Bytes`].
    /// Cloning the returned [`Bytes`] shares the allocation.
    pub fn as_shared_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow as list, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow as map, if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable map access, if this is a [`Value::Map`].
    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map field lookup: `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Insert into a map value; turns `Null` into a map first.
    ///
    /// # Panics
    ///
    /// Panics if `self` is neither `Null` nor a `Map`.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        if matches!(self, Value::Null) {
            *self = Value::map();
        }
        self.as_map_mut()
            .expect("Value::set requires a Map or Null value")
            .insert(key.into(), value.into());
        self
    }

    /// True if `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Estimated wire size in bytes (for network statistics).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
            Value::List(l) => 5 + l.iter().map(Value::wire_size).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| 5 + k.len() + v.wire_size())
                    .sum::<usize>()
            }
        }
    }

    /// Encode to the compact binary form used for DSM-resident state.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(false) => out.push(1),
            Value::Bool(true) => out.push(2),
            Value::Int(i) => {
                out.push(3);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                out.push(4);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(5);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(6);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b.as_slice());
            }
            Value::List(l) => {
                out.push(7);
                out.extend_from_slice(&(l.len() as u32).to_le_bytes());
                for v in l {
                    v.encode_into(out);
                }
            }
            Value::Map(m) => {
                out.push(8);
                out.extend_from_slice(&(m.len() as u32).to_le_bytes());
                for (k, v) in m {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.encode_into(out);
                }
            }
        }
    }

    /// Decode a value previously produced by [`Value::encode`].
    ///
    /// Byte payloads are copied out of the borrowed input (charging the
    /// [`Bytes`] deep-copy counter); use [`Value::decode_shared`] when
    /// the caller owns the frame as a [`Bytes`] buffer.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Value, DecodeError> {
        Self::decode_inner(bytes, None)
    }

    /// Decode from a shared buffer: every [`Value::Bytes`] in the result
    /// is a zero-copy slice view into `buf`'s backing allocation, so a
    /// frame received off the wire decodes without copying payload bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input, or trailing bytes.
    pub fn decode_shared(buf: &Bytes) -> Result<Value, DecodeError> {
        Self::decode_inner(buf.as_slice(), Some(buf))
    }

    fn decode_inner(bytes: &[u8], backing: Option<&Bytes>) -> Result<Value, DecodeError> {
        let mut cursor = Cursor {
            bytes,
            backing,
            pos: 0,
        };
        let v = cursor.value()?;
        if cursor.pos != bytes.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after value",
                bytes.len() - cursor.pos
            )));
        }
        Ok(v)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    /// When decoding from a shared buffer (`bytes == backing.as_slice()`),
    /// byte payloads become slice views of it instead of copies.
    backing: Option<&'a Bytes>,
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError(format!(
                "truncated: need {n} bytes at {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?.to_vec();
        String::from_utf8(raw).map_err(|e| DecodeError(e.to_string()))
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Bool(false),
            2 => Value::Bool(true),
            3 => Value::Int(i64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            4 => Value::Float(f64::from_le_bytes(self.take(8)?.try_into().expect("8"))),
            5 => Value::Str(self.string()?),
            6 => {
                let len = self.u32()? as usize;
                let start = self.pos;
                let backing = self.backing;
                let raw = self.take(len)?;
                Value::Bytes(match backing {
                    Some(b) => b.slice(start..start + len),
                    None => Bytes::copy_from_slice(raw),
                })
            }
            7 => {
                let len = self.u32()? as usize;
                let mut l = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    l.push(self.value()?);
                }
                Value::List(l)
            }
            8 => {
                let len = self.u32()? as usize;
                let mut m = BTreeMap::new();
                for _ in 0..len {
                    let k = self.string()?;
                    m.insert(k, self.value()?);
                }
                Value::Map(m)
            }
            t => return Err(DecodeError(format!("unknown tag {t}"))),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                f.write_str("[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Null
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        // Zero-copy: the vector becomes the shared backing store.
        Value::Bytes(Bytes::from_vec(b))
    }
}
impl From<Bytes> for Value {
    fn from(b: Bytes) -> Self {
        Value::Bytes(b)
    }
}
impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut v = Value::map();
        v.set("name", "worker");
        v.set("count", 42i64);
        v.set("ratio", 0.5f64);
        v.set("flag", true);
        v.set("blob", vec![1u8, 2, 3]);
        v.set(
            "nested",
            Value::List(vec![Value::Null, Value::Int(-7), Value::Str("x".into())]),
        );
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = sample();
        let bytes = v.encode();
        assert_eq!(Value::decode(&bytes).unwrap(), v);
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Bytes(Bytes::new()),
            Value::List(vec![]),
            Value::map(),
        ] {
            assert_eq!(Value::decode(&v.encode()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(Value::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Value::Int(1).encode();
        bytes.push(0);
        assert!(Value::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(Value::decode(&[99]).is_err());
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Int(3).as_str(), None);
        assert!(Value::Null.is_null());
        let v = sample();
        assert_eq!(v.get("count").and_then(Value::as_int), Some(42));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn set_on_null_creates_map() {
        let mut v = Value::Null;
        v.set("a", 1i64);
        assert_eq!(v.get("a").and_then(Value::as_int), Some(1));
    }

    #[test]
    #[should_panic(expected = "requires a Map")]
    fn set_on_scalar_panics() {
        let mut v = Value::Int(1);
        v.set("a", 2i64);
    }

    #[test]
    fn display_is_readable() {
        let v = Value::List(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(v.to_string(), "[1, \"x\"]");
        assert_eq!(Value::from(vec![0u8; 4]).to_string(), "<4 bytes>");
    }

    #[test]
    fn bytes_round_trip_over_shared_buffers() {
        let mut v = Value::map();
        v.set("blob", vec![9u8; 256]);
        v.set(
            "nested",
            Value::List(vec![Value::from(vec![1u8, 2, 3]), Value::Int(5)]),
        );
        let frame = Bytes::from_vec(v.encode());
        // Copying decode still round-trips.
        assert_eq!(Value::decode(frame.as_slice()).unwrap(), v);
        // Shared decode round-trips too, and every Bytes leaf is a view
        // into the frame's allocation — zero payload bytes copied.
        let shared = Value::decode_shared(&frame).unwrap();
        assert_eq!(shared, v);
        let blob = shared.get("blob").and_then(Value::as_shared_bytes).unwrap();
        assert!(Bytes::ptr_eq(blob, &frame), "leaf must view the frame");
        assert_eq!(blob.as_slice(), &[9u8; 256][..]);
        let nested = shared.get("nested").and_then(Value::as_list).unwrap();
        let inner = nested[0].as_shared_bytes().unwrap();
        assert!(Bytes::ptr_eq(inner, &frame));
        assert_eq!(inner.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn decode_shared_rejects_malformed_input_like_decode() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            let buf = Bytes::from_vec(bytes[..cut].to_vec());
            assert!(Value::decode_shared(&buf).is_err(), "cut at {cut}");
        }
        let mut trailing = Value::Int(1).encode();
        trailing.push(0);
        assert!(Value::decode_shared(&Bytes::from_vec(trailing)).is_err());
    }

    #[test]
    fn wire_size_tracks_content() {
        assert!(Value::Str("hello".into()).wire_size() > Value::Str("".into()).wire_size());
        assert!(sample().wire_size() > 40);
    }
}
