//! Lock-striped delivery-tracker table (DESIGN.md §3f).
//!
//! The kernel used to funnel every in-flight raise through one
//! `Mutex<HashMap<u64, DeliveryTracker>>`: receipt resolution on one
//! delivery contended with raise registration on every other. This table
//! splits the map into [`SHARDS`] independently locked stripes keyed by
//! `delivery_id` (the same mix-and-stripe pattern as the location cache),
//! so two deliveries touch the same lock only when they hash to the same
//! shard — and the sweep can walk one shard at a time instead of stalling
//! the whole pipeline.
//!
//! The table also owns the shutdown handshake that used to be a race: once
//! [`ShardedTable::drain`] runs, every shard is marked draining and a
//! concurrent [`ShardedTable::insert`] is *refused*, handing the value
//! back as [`Insert::Draining`] so the caller resolves it as `Lost`
//! exactly once. Without that, a raiser thread could insert a tracker
//! after the drain pass had already emptied its shard, stranding the
//! raise forever. Single-winner resolution (a tracker leaves the map via
//! exactly one of `remove`/`drain`/refused-insert) is proved over every
//! 3-thread interleaving by the `sharded-table-drain` schedule model in
//! `crates/analyze`.

use doct_telemetry::Counter;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;

/// Number of lock stripes. Tuned like the location cache: enough that 8
/// reactors rarely collide, few enough that a full sweep stays cheap.
pub const SHARDS: usize = 16;

/// Stripe index for a delivery id (Fibonacci-mix then stripe, same
/// recipe as the location cache so ids allocated in sequence spread).
pub fn shard_of(id: u64) -> usize {
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % SHARDS
}

/// One lock stripe: the live trackers whose ids hash here, plus the
/// drain latch that refuses post-shutdown inserts.
pub struct Shard<V> {
    pub(crate) entries: HashMap<u64, V>,
    pub(crate) draining: bool,
}

/// Outcome of [`ShardedTable::insert`]: either the value is live in the
/// table, or the table is draining and the value is handed back so the
/// caller can resolve it (the table will never see it again).
#[must_use = "a Draining insert hands the value back; dropping it silently loses the delivery"]
pub enum Insert<V> {
    /// Stored; receipts/sweeps will find it.
    Admitted,
    /// The table is shutting down: the value was refused and returned.
    Draining(V),
}

/// A fixed-stripe concurrent map from `delivery_id` to tracker state.
pub struct ShardedTable<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// `kernel.shard_contention`: lock acquisitions that found the stripe
    /// already held (a try-lock miss before the blocking acquire).
    contention: Counter,
}

impl<V> ShardedTable<V> {
    /// Fresh table. `contention` should be the cluster's
    /// `kernel.shard_contention` counter (or a detached `Counter::new()`
    /// in models/tests).
    pub fn new(contention: Counter) -> Self {
        ShardedTable {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        draining: false,
                    })
                })
                .collect(),
            contention,
        }
    }

    /// Number of stripes (reactor sweep ownership is `shard % reactors`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lock stripe `idx`, counting contended acquisitions.
    pub(crate) fn lock_shard(&self, idx: usize) -> MutexGuard<'_, Shard<V>> {
        match self.shards[idx].try_lock() {
            Some(guard) => guard,
            None => {
                self.contention.inc();
                self.shards[idx].lock()
            }
        }
    }

    /// Insert `value` under `id` — unless the table is draining, in which
    /// case the value is handed back for the caller to resolve as lost.
    pub fn insert(&self, id: u64, value: V) -> Insert<V> {
        let idx = shard_of(id);
        let mut shard = self.lock_shard(idx);
        if shard.draining {
            return Insert::Draining(value);
        }
        shard.entries.insert(id, value);
        Insert::Admitted
    }

    /// Remove and return the entry for `id`, if still live. Exactly one
    /// of `remove`/`drain` wins each entry.
    pub fn remove(&self, id: u64) -> Option<V> {
        let idx = shard_of(id);
        let mut shard = self.lock_shard(idx);
        shard.entries.remove(&id)
    }

    /// Run `f` on the live entry for `id`, if any.
    pub fn with_mut<R>(&self, id: u64, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let idx = shard_of(id);
        let mut shard = self.lock_shard(idx);
        shard.entries.get_mut(&id).map(f)
    }

    /// Mark every stripe draining and take all remaining entries. After
    /// this returns, concurrent `insert`s are refused ([`Insert::Draining`])
    /// and concurrent `remove`s find nothing — each in-flight tracker is
    /// resolved by exactly one party.
    pub fn drain(&self) -> Vec<V> {
        let mut out = Vec::new();
        for idx in 0..self.shards.len() {
            let mut shard = self.lock_shard(idx);
            shard.draining = true;
            out.extend(shard.entries.drain().map(|(_, v)| v));
        }
        out
    }

    /// Live entries across all stripes (diagnostics).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|idx| self.lock_shard(idx).entries.len())
            .sum()
    }

    /// True when no stripe holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_spread_across_shards() {
        let hit: std::collections::HashSet<usize> = (0..64u64).map(shard_of).collect();
        assert!(hit.len() > SHARDS / 2, "sequential ids must stripe");
    }

    #[test]
    fn insert_remove_roundtrip_and_len() {
        let t = ShardedTable::new(Counter::new());
        for id in 0..100 {
            assert!(matches!(t.insert(id, id * 2), Insert::Admitted));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.remove(7), Some(14));
        assert_eq!(t.remove(7), None, "single winner");
        assert_eq!(t.with_mut(8, |v| *v), Some(16));
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn drain_refuses_later_inserts() {
        let t = ShardedTable::new(Counter::new());
        let _ = t.insert(1, 10u32);
        let drained = t.drain();
        assert_eq!(drained, vec![10]);
        match t.insert(2, 20) {
            Insert::Draining(v) => assert_eq!(v, 20),
            Insert::Admitted => panic!("insert admitted after drain"),
        }
        assert!(t.is_empty());
        assert!(t.drain().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn contention_counter_counts_held_stripes() {
        let t: ShardedTable<u32> = ShardedTable::new(Counter::new());
        let idx = shard_of(5);
        std::thread::scope(|s| {
            let guard = t.lock_shard(idx);
            // The stripe is held for this thread's entire scope, so the
            // contender's try_lock must miss and count one contention.
            let contender = s.spawn(|| {
                let g = t.lock_shard(idx);
                drop(g);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(guard);
            contender.join().expect("contender");
        });
        assert_eq!(t.contention.get(), 1);
        let g = t.lock_shard(idx);
        drop(g);
        assert_eq!(t.contention.get(), 1, "uncontended locks count nothing");
    }
}
