//! The simulated DO/CT cluster: construction, object/thread lifecycle,
//! external event injection, and the timer service.

use crate::node::{IoHub, NodeKernel, RaiseTicket, TimerCmd};
use crate::{
    ClassRegistry, Ctx, DeliveryStatus, EventDispatcher, EventName, FabricChoice, GroupRegistry,
    KernelConfig, KernelError, KernelMessage, ObjectBehavior, ObjectConfig, ObjectDirectory,
    ObjectId, ObjectRecord, RaiseTarget, ThreadAttributes, ThreadGroupId, ThreadId, Value,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use doct_dsm::Backing;
use doct_net::{
    FabricSpec, FailureConfig, LatencyModel, MessageClass, NetStats, Network, NodeId,
    ReliabilityConfig, UdpConfig,
};
use doct_telemetry::Telemetry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A persistent image of one object: everything needed to re-create it in
/// another cluster incarnation. The paper's objects are *persistent* —
/// "objects in our model are persistent by nature and may exist passively"
/// (§3.1); exporting and importing images models a system restart.
#[derive(Debug, Clone)]
pub struct ObjectImage {
    /// Original object id (preserved across import).
    pub id: ObjectId,
    /// Class name (its code must be registered in the importing cluster).
    pub class: String,
    /// Home node.
    pub home: NodeId,
    /// Encoded state (`Value::encode` of the current state).
    pub state: Vec<u8>,
    /// State segment capacity.
    pub state_size: usize,
    /// Exclusive-execution flag.
    pub exclusive: bool,
}

/// Handle to a spawned logical thread.
#[derive(Debug)]
pub struct ThreadHandle {
    thread: ThreadId,
    rx: Receiver<Result<Value, KernelError>>,
}

impl ThreadHandle {
    /// The logical thread's id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Wait for the thread to finish and take its result.
    ///
    /// # Errors
    ///
    /// Whatever the thread's body failed with ([`KernelError::Terminated`]
    /// if it was terminated by an event).
    pub fn join(self) -> Result<Value, KernelError> {
        self.rx
            .recv()
            .unwrap_or(Err(KernelError::Timeout("thread lost".to_string())))
    }

    /// Wait up to `timeout`; `None` if the thread is still running.
    pub fn join_timeout(self, timeout: Duration) -> Option<Result<Value, KernelError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Some(Err(KernelError::Timeout("thread lost".to_string())))
            }
        }
    }

    /// Non-blocking completion check.
    pub fn is_finished(&self) -> bool {
        !self.rx.is_empty() || self.rx.recv_timeout(Duration::ZERO).is_ok()
    }
}

/// Options for spawning a logical thread.
#[derive(Debug, Clone, Default)]
pub struct SpawnOptions {
    /// Join this group at birth.
    pub group: Option<ThreadGroupId>,
    /// I/O channel name (simulated terminal).
    pub io_channel: Option<String>,
    /// Inherit attributes (event registry included) from this snapshot
    /// instead of starting fresh.
    pub inherit: Option<ThreadAttributes>,
}

/// Builder for [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: usize,
    latency: LatencyModel,
    config: KernelConfig,
    dsm: doct_dsm::DsmConfig,
    reliability: Option<(ReliabilityConfig, FailureConfig)>,
}

impl ClusterBuilder {
    /// Start building an `n`-node cluster.
    pub fn new(nodes: usize) -> Self {
        ClusterBuilder {
            nodes,
            latency: LatencyModel::Zero,
            config: KernelConfig::default(),
            dsm: doct_dsm::DsmConfig::default(),
            reliability: None,
        }
    }

    /// Set the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Set the kernel configuration.
    pub fn config(mut self, config: KernelConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the DSM configuration.
    pub fn dsm(mut self, dsm: doct_dsm::DsmConfig) -> Self {
        self.dsm = dsm;
        self
    }

    /// Turn on the acked/retried transport and heartbeat failure detector
    /// with default tuning.
    pub fn reliable(self) -> Self {
        self.reliable_with(ReliabilityConfig::default(), FailureConfig::default())
    }

    /// Turn on the reliability layer with explicit tuning.
    pub fn reliable_with(mut self, rel: ReliabilityConfig, failure: FailureConfig) -> Self {
        self.reliability = Some((rel, failure));
        self
    }

    /// Build and start the cluster.
    ///
    /// The transport is chosen by [`KernelConfig::effective_fabric`]
    /// (`DOCT_FABRIC=udp` flips the whole cluster onto real loopback
    /// sockets; the latency model only applies to the simulated fabric).
    pub fn build(self) -> Cluster {
        let telemetry = Telemetry::shared();
        let stats = Arc::new(NetStats::bound(telemetry.registry()));
        let spec = match self.config.effective_fabric() {
            FabricChoice::Sim => FabricSpec::Sim(self.latency),
            FabricChoice::Udp => {
                FabricSpec::Udp(UdpConfig::loopback(self.nodes).expect("bind loopback udp sockets"))
            }
        };
        let net = Arc::new(
            Network::try_with_fabric(self.nodes, spec, stats).expect("spawn fabric worker threads"),
        );
        if let Some((rel, failure)) = self.reliability {
            net.enable_reliability(rel, failure)
                .expect("reliability config must validate");
        }
        let directory = Arc::new(ObjectDirectory::new());
        let classes = Arc::new(ClassRegistry::new());
        let groups = Arc::new(GroupRegistry::new());
        let io = Arc::new(IoHub::new());
        let mut kernels = Vec::with_capacity(self.nodes);
        let mut joins = Vec::new();
        for id in 0..self.nodes as u32 {
            let k = NodeKernel::new(
                NodeId(id),
                self.config,
                Arc::clone(&net),
                Arc::clone(&directory),
                Arc::clone(&classes),
                Arc::clone(&groups),
                Arc::clone(&io),
                self.dsm,
                Arc::clone(&telemetry),
            );
            joins.extend(k.start());
            kernels.push(k);
        }
        let (timer_tx, timer_rx) = unbounded();
        for k in &kernels {
            k.set_timer_channel(timer_tx.clone());
        }
        let timer_kernels: Vec<Arc<NodeKernel>> = kernels.clone();
        joins.push(
            std::thread::Builder::new()
                .name("timer-service".into())
                .spawn(move || run_timer_service(timer_rx, timer_kernels))
                .expect("spawn timer service"),
        );
        Cluster {
            net,
            kernels,
            directory,
            classes,
            groups,
            io,
            config: self.config,
            telemetry,
            timer_tx,
            joins: parking_lot::Mutex::new(joins),
        }
    }
}

/// A running simulated DO/CT cluster.
pub struct Cluster {
    net: Arc<Network<KernelMessage>>,
    kernels: Vec<Arc<NodeKernel>>,
    directory: Arc<ObjectDirectory>,
    classes: Arc<ClassRegistry>,
    groups: Arc<GroupRegistry>,
    io: Arc<IoHub>,
    config: KernelConfig,
    telemetry: Arc<Telemetry>,
    timer_tx: Sender<TimerCmd>,
    joins: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.kernels.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// An `n`-node cluster with default configuration.
    pub fn new(nodes: usize) -> Self {
        ClusterBuilder::new(nodes).build()
    }

    /// Builder with all the knobs.
    pub fn builder(nodes: usize) -> ClusterBuilder {
        ClusterBuilder::new(nodes)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kernels.len()
    }

    /// The kernel of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn kernel(&self, i: usize) -> &Arc<NodeKernel> {
        &self.kernels[i]
    }

    /// The network fabric (stats, partitions).
    pub fn net(&self) -> &Arc<Network<KernelMessage>> {
        &self.net
    }

    /// The object directory.
    pub fn directory(&self) -> &Arc<ObjectDirectory> {
        &self.directory
    }

    /// The thread-group registry.
    pub fn groups(&self) -> &Arc<GroupRegistry> {
        &self.groups
    }

    /// The simulated console hub.
    pub fn io(&self) -> &Arc<IoHub> {
        &self.io
    }

    /// The cluster configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The cluster-shared telemetry hub: metrics registry plus the event
    /// lifecycle trace ring (every node writes to the same instance).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Install the event facility's dispatcher on every node.
    pub fn set_dispatcher(&self, dispatcher: Arc<dyn EventDispatcher>) {
        for k in &self.kernels {
            k.set_dispatcher(Arc::clone(&dispatcher));
        }
    }

    /// Register object class code (replicated to every node).
    pub fn register_class(&self, name: impl Into<String>, behavior: Arc<dyn ObjectBehavior>) {
        self.classes.register(name, behavior);
    }

    /// Create a passive, persistent object.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownClass`] if the class is unregistered,
    /// [`KernelError::UnknownNode`] for a bad home node, or DSM errors
    /// writing the initial state.
    pub fn create_object(&self, config: ObjectConfig) -> Result<ObjectId, KernelError> {
        if self.classes.get(&config.class).is_none() {
            return Err(KernelError::UnknownClass(config.class));
        }
        let home = self
            .kernels
            .get(config.home.index())
            .ok_or(KernelError::UnknownNode(config.home))?;
        let id = home.new_object_id();
        let seg = home
            .dsm()
            .create_segment(config.state_size, Backing::Kernel);
        for k in &self.kernels {
            if k.node_id() != config.home {
                k.dsm().attach(seg);
            }
        }
        let enc = config.initial_state.encode();
        if 4 + enc.len() > seg.size {
            return Err(KernelError::StateTooLarge {
                object: id,
                need: 4 + enc.len(),
                capacity: seg.size,
            });
        }
        home.dsm()
            .write(seg.id, 0, &(enc.len() as u32).to_le_bytes())?;
        home.dsm().write(seg.id, 4, &enc)?;
        self.directory.insert(Arc::new(ObjectRecord::with_exclusive(
            id,
            config.class,
            config.home,
            seg,
            config.exclusive,
        )));
        Ok(id)
    }

    /// Create a thread group.
    pub fn create_group(&self) -> ThreadGroupId {
        self.groups.create(NodeId(0))
    }

    /// Export every object's persistent image ("objects are persistent by
    /// nature", §3.1) — the analogue of the persistent store surviving a
    /// shutdown. Quiesce application threads first; exports read each
    /// object's current state through DSM.
    ///
    /// # Errors
    ///
    /// DSM read failures.
    pub fn export_objects(&self) -> Result<Vec<ObjectImage>, KernelError> {
        let mut images = Vec::new();
        for id in self.directory.ids() {
            let Some(record) = self.directory.get(id) else {
                continue;
            };
            let seg = record.state_segment;
            let home = &self.kernels[record.home.index()];
            let len_bytes = home.dsm().read(seg.id, 0, 4)?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            let state = if len == 0 {
                Value::Null.encode()
            } else {
                home.dsm().read(seg.id, 4, len)?
            };
            images.push(ObjectImage {
                id,
                class: record.class.clone(),
                home: record.home,
                state,
                state_size: seg.size,
                exclusive: record.exclusive,
            });
        }
        Ok(images)
    }

    /// Import persistent object images into this cluster (ids preserved,
    /// handler tables start empty — object init code re-installs them, as
    /// the paper's object initialization does).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownClass`] if an image's class is unregistered,
    /// [`KernelError::UnknownNode`] for out-of-range homes, DSM failures.
    pub fn import_objects(&self, images: &[ObjectImage]) -> Result<(), KernelError> {
        for image in images {
            if self.classes.get(&image.class).is_none() {
                return Err(KernelError::UnknownClass(image.class.clone()));
            }
            let home = self
                .kernels
                .get(image.home.index())
                .ok_or(KernelError::UnknownNode(image.home))?;
            home.reserve_object_seq(image.id.0 & 0xffff_ffff);
            let seg = home.dsm().create_segment(image.state_size, Backing::Kernel);
            for k in &self.kernels {
                if k.node_id() != image.home {
                    k.dsm().attach(seg);
                }
            }
            if 4 + image.state.len() > seg.size {
                return Err(KernelError::StateTooLarge {
                    object: image.id,
                    need: 4 + image.state.len(),
                    capacity: seg.size,
                });
            }
            home.dsm()
                .write(seg.id, 0, &(image.state.len() as u32).to_le_bytes())?;
            home.dsm().write(seg.id, 4, &image.state)?;
            self.directory.insert(Arc::new(ObjectRecord::with_exclusive(
                image.id,
                image.class.clone(),
                image.home,
                seg,
                image.exclusive,
            )));
        }
        Ok(())
    }

    /// Spawn a logical thread on `node` that invokes `entry` on `object`.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`] for a bad node index.
    pub fn spawn(
        &self,
        node: usize,
        object: ObjectId,
        entry: &str,
        args: impl Into<Value>,
    ) -> Result<ThreadHandle, KernelError> {
        self.spawn_with(node, SpawnOptions::default(), object, entry, args)
    }

    /// Spawn with options (group membership, I/O channel, inheritance).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`] for a bad node index.
    pub fn spawn_with(
        &self,
        node: usize,
        options: SpawnOptions,
        object: ObjectId,
        entry: &str,
        args: impl Into<Value>,
    ) -> Result<ThreadHandle, KernelError> {
        let entry = entry.to_string();
        let args = args.into();
        self.spawn_fn_with(node, options, move |ctx| ctx.invoke(object, &entry, args))
    }

    /// Spawn a logical thread running an arbitrary body (tests, drivers,
    /// event-facility services).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`] for a bad node index.
    pub fn spawn_fn(
        &self,
        node: usize,
        body: impl FnOnce(&mut Ctx) -> Result<Value, KernelError> + Send + 'static,
    ) -> Result<ThreadHandle, KernelError> {
        self.spawn_fn_with(node, SpawnOptions::default(), body)
    }

    /// [`Cluster::spawn_fn`] with options.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownNode`] for a bad node index.
    pub fn spawn_fn_with(
        &self,
        node: usize,
        options: SpawnOptions,
        body: impl FnOnce(&mut Ctx) -> Result<Value, KernelError> + Send + 'static,
    ) -> Result<ThreadHandle, KernelError> {
        let kernel = self
            .kernels
            .get(node)
            .ok_or(KernelError::UnknownNode(NodeId(node as u32)))?;
        let thread = kernel.new_thread_id();
        let mut attrs = match options.inherit {
            Some(parent) => parent.inherit_for(thread, kernel.node_id()),
            None => ThreadAttributes::new(thread, kernel.node_id()),
        };
        if options.group.is_some() {
            attrs.group = options.group;
        }
        if options.io_channel.is_some() {
            attrs.io_channel = options.io_channel;
        }
        let rx = kernel.spawn_logical(attrs, body);
        Ok(ThreadHandle { thread, rx })
    }

    /// Inject an event from outside any thread (e.g. the console's ^C,
    /// §6.3), raised at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn raise_from(
        &self,
        node: usize,
        name: impl Into<EventName>,
        payload: impl Into<Value>,
        target: impl Into<RaiseTarget>,
    ) -> RaiseTicket {
        let (ticket, _seq) =
            self.kernels[node].raise_event(name.into(), payload.into(), target.into(), false, None);
        ticket
    }

    /// Terminate every thread in `group`: raises QUIT to the current
    /// members and keeps re-raising until the group drains or `timeout`
    /// passes. Re-raising covers the §7.1 race where a fast-moving member
    /// evades one round of locate probes. Returns `true` if the group
    /// emptied.
    pub fn terminate_group(&self, group: ThreadGroupId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.groups.member_count(group) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return self.groups.member_count(group) == 0;
            }
            // Outcome deliberately unused: member_count above is the
            // authority on progress, and the loop re-raises until the
            // group drains or the deadline hits.
            let _ = self
                .raise_from(
                    0,
                    crate::SystemEvent::Quit,
                    Value::Null,
                    RaiseTarget::Group(group),
                )
                .wait();
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Total live activations across the cluster (used by the §6.3
    /// orphan check: after termination this must reach zero).
    pub fn live_activations(&self) -> usize {
        self.kernels.iter().map(|k| k.activation_count()).sum()
    }

    /// Wait until no activations remain (threads all exited), up to
    /// `timeout`. Returns `true` on success.
    pub fn await_quiescence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.live_activations() == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.live_activations() == 0
    }

    /// Shut the cluster down: stops kernel loops, master handler threads,
    /// and the timer service. Called automatically on drop.
    pub fn shutdown(&self) {
        let _ = self.timer_tx.send(TimerCmd::Shutdown);
        for k in &self.kernels {
            k.request_shutdown();
            let _ = self.net.send(
                k.node_id(),
                k.node_id(),
                KernelMessage::Shutdown,
                MessageClass::Control,
            );
        }
        let mut joins = self.joins.lock();
        for j in joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct TimerEntry {
    thread: ThreadId,
    id: u64,
    period: Duration,
    payload: Value,
    event: EventName,
    one_shot: bool,
    next_fire: Instant,
}

fn run_timer_service(rx: Receiver<TimerCmd>, kernels: Vec<Arc<NodeKernel>>) {
    let mut timers: Vec<TimerEntry> = Vec::new();
    let mut outcomes: Vec<(ThreadId, Receiver<DeliveryStatus>)> = Vec::new();
    let mut dead: HashMap<ThreadId, ()> = HashMap::new();
    loop {
        let now = Instant::now();
        let next_due = timers
            .iter()
            .map(|t| t.next_fire)
            .min()
            .unwrap_or(now + Duration::from_millis(50));
        let wait = next_due
            .saturating_duration_since(now)
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(TimerCmd::Register {
                thread,
                id,
                period,
                payload,
                event,
                one_shot,
            }) => {
                dead.remove(&thread);
                timers.push(TimerEntry {
                    thread,
                    id,
                    period,
                    payload,
                    event,
                    one_shot,
                    next_fire: Instant::now() + period,
                });
            }
            Ok(TimerCmd::Cancel { thread, id }) => {
                timers.retain(|t| !(t.thread == thread && t.id == id));
            }
            Ok(TimerCmd::CancelThread(thread)) => {
                timers.retain(|t| t.thread != thread);
            }
            Ok(TimerCmd::Shutdown) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
        // Collect delivery outcomes: timers of dead threads stop.
        outcomes.retain(|(thread, rx)| match rx.try_recv() {
            Ok(DeliveryStatus::TargetDead) => {
                dead.insert(*thread, ());
                false
            }
            Ok(_) => false,
            Err(crossbeam::channel::TryRecvError::Empty) => true,
            Err(crossbeam::channel::TryRecvError::Disconnected) => false,
        });
        timers.retain(|t| !dead.contains_key(&t.thread));
        let now = Instant::now();
        let mut fired_one_shots = Vec::new();
        for t in timers.iter_mut() {
            if t.next_fire <= now {
                t.next_fire = now + t.period;
                let kernel = &kernels[t.thread.root.index().min(kernels.len() - 1)];
                // Re-fires share the registered payload buffer: for
                // Bytes payloads these clones are refcount bumps.
                let (ticket, _seq) = kernel.raise_event(
                    t.event.clone(),
                    t.payload.clone(),
                    RaiseTarget::Thread(t.thread),
                    false,
                    None,
                );
                for rx in ticket.into_receivers() {
                    outcomes.push((t.thread, rx));
                }
                if t.one_shot {
                    fired_one_shots.push((t.thread, t.id));
                }
            }
        }
        timers.retain(|t| !fired_one_shots.contains(&(t.thread, t.id)));
    }
}
