//! Activations: the runtime presence of a logical thread on a node.
//!
//! An activation exists on every node where the thread currently has at
//! least one invocation frame. Pending events are queued here — in a
//! bounded priority [`Mailbox`], not an unbounded FIFO — and consumed at
//! delivery points by the frame that is the thread's *tip*.

use crate::mailbox::{Admission, Mailbox, MailboxConfig};
use crate::{KernelError, ObjectId, ThreadAttributes, ThreadId, Value, WireEvent};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One invocation frame the thread holds on this node.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Object the code belongs to.
    pub object: ObjectId,
    /// Entry point being executed.
    pub entry: String,
    /// Global invocation depth of this frame.
    pub depth: u32,
}

/// Mutable activation state, behind the activation lock.
pub struct ActivationInner {
    /// The thread's travelling attribute record.
    pub attributes: ThreadAttributes,
    /// Events waiting for the next delivery point, in priority lanes.
    pub mailbox: Mailbox,
    /// Local frames, innermost last.
    pub stack: Vec<Frame>,
    /// True while a handler is executing: delivery points inside the
    /// handler do not recurse (events stay queued, like a masked signal).
    pub handling: bool,
    /// Set when a delivered event decided to terminate the thread.
    pub terminated: bool,
    /// Results of synchronous raises this thread is waiting on,
    /// keyed by event seq.
    pub sync_results: HashMap<u64, Value>,
    /// Simulated program counter: incremented by compute loops so the
    /// monitoring application (§6.2) has something to sample.
    pub pc: u64,
}

impl fmt::Debug for ActivationInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivationInner")
            .field("thread", &self.attributes.thread)
            .field("pending", &self.mailbox.len())
            .field("stack", &self.stack.len())
            .field("handling", &self.handling)
            .field("terminated", &self.terminated)
            .finish()
    }
}

/// The runtime presence of a logical thread on one node.
pub struct Activation {
    /// Thread identity.
    pub thread: ThreadId,
    inner: Mutex<ActivationInner>,
    wake: Condvar,
    /// Mailbox depth mirror, maintained by the mailbox under the
    /// activation lock but readable without it (the sweep's atomic
    /// snapshot — it must never contend with delivery).
    depth: Arc<AtomicUsize>,
}

impl fmt::Debug for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activation")
            .field("thread", &self.thread)
            .finish_non_exhaustive()
    }
}

impl Activation {
    /// New activation carrying `attributes`, with the default mailbox
    /// bounds.
    pub fn new(attributes: ThreadAttributes) -> Self {
        Self::with_mailbox(attributes, MailboxConfig::default())
    }

    /// New activation with explicit mailbox bounds (the kernel passes its
    /// cluster-wide `KernelConfig::mailbox` here at check-in).
    pub fn with_mailbox(attributes: ThreadAttributes, config: MailboxConfig) -> Self {
        let mailbox = Mailbox::new(config);
        let depth = mailbox.depth_handle();
        Activation {
            thread: attributes.thread,
            inner: Mutex::new(ActivationInner {
                attributes,
                mailbox,
                stack: Vec::new(),
                handling: false,
                terminated: false,
                sync_results: HashMap::new(),
                pc: 0,
            }),
            wake: Condvar::new(),
            depth,
        }
    }

    /// Lock the inner state.
    pub fn lock(&self) -> MutexGuard<'_, ActivationInner> {
        self.inner.lock()
    }

    /// Offer an event for the next delivery point. When the mailbox
    /// admits it, blocked kernel operations are woken so they notice;
    /// when the lane is full the event is shed and the caller must
    /// account it as `Overloaded` (the admission is `#[must_use]`).
    pub fn push_event(&self, event: WireEvent) -> Admission {
        let mut inner = self.inner.lock();
        let admission = inner.mailbox.push(event);
        drop(inner);
        if admission.is_stored() {
            self.wake.notify_all();
        }
        admission
    }

    /// Deliver a synchronous-raise result and wake the waiter.
    pub fn push_sync_result(&self, seq: u64, verdict: Value) {
        let mut inner = self.inner.lock();
        inner.sync_results.insert(seq, verdict);
        drop(inner);
        self.wake.notify_all();
    }

    /// Take the next pending event in priority order, unless a handler is
    /// already running. Near-deadline timer jumps use `now_ns` (the
    /// telemetry clock); callers without a clock can pass 0 — priority
    /// order still holds, timers just never jump the user lane.
    pub fn take_event_at(&self, now_ns: u64) -> Option<WireEvent> {
        let mut inner = self.inner.lock();
        if inner.handling {
            return None;
        }
        inner.mailbox.pop(now_ns)
    }

    /// [`Activation::take_event_at`] without a clock.
    pub fn take_event(&self) -> Option<WireEvent> {
        self.take_event_at(0)
    }

    /// Number of queued events.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().mailbox.len()
    }

    /// Mailbox depth without taking the activation lock: an atomic mirror
    /// the mailbox maintains on every push/pop. The kernel sweep samples
    /// this, so it can never observe a mailbox mid-resize and never
    /// blocks delivery.
    pub fn depth_hint(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Shared handle to the depth mirror (see [`Activation::depth_hint`]).
    pub fn depth_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.depth)
    }

    /// Mark the thread terminated (delivery decided `Terminate`).
    pub fn mark_terminated(&self) {
        self.inner.lock().terminated = true;
        self.wake.notify_all();
    }

    /// Whether the thread has been marked terminated.
    pub fn is_terminated(&self) -> bool {
        self.inner.lock().terminated
    }

    /// Block until `deadline` for either a pending event, a sync result
    /// for `seq`, or termination. Returns the sync result if it arrived.
    ///
    /// Used by `raise_and_wait`: the raiser blocks "until it is explicitly
    /// resumed by a handler" (§5.3) yet stays responsive to events aimed
    /// at *it* (e.g. TERMINATE).
    pub fn wait_sync(&self, seq: u64, deadline: Instant) -> SyncWait {
        let mut inner = self.inner.lock();
        loop {
            if let Some(v) = inner.sync_results.remove(&seq) {
                return SyncWait::Resumed(v);
            }
            if inner.terminated {
                return SyncWait::Terminated;
            }
            if !inner.mailbox.is_empty() && !inner.handling {
                return SyncWait::EventPending;
            }
            let now = Instant::now();
            if now >= deadline {
                return SyncWait::TimedOut;
            }
            self.wake
                .wait_until(&mut inner, deadline.min(now + Duration::from_millis(50)));
        }
    }

    /// Event-responsive sleep: returns early if an event arrives or the
    /// thread is terminated.
    pub fn sleep(&self, duration: Duration) -> SleepOutcome {
        let deadline = Instant::now() + duration;
        let mut inner = self.inner.lock();
        loop {
            if inner.terminated {
                return SleepOutcome::Terminated;
            }
            if !inner.mailbox.is_empty() && !inner.handling {
                return SleepOutcome::EventPending;
            }
            if Instant::now() >= deadline {
                return SleepOutcome::Elapsed;
            }
            self.wake.wait_until(&mut inner, deadline);
        }
    }

    /// Snapshot of the attributes (same logical thread: extensions shared).
    pub fn attributes_snapshot(&self) -> ThreadAttributes {
        self.inner.lock().attributes.clone()
    }

    /// Innermost local frame's object, if any.
    pub fn current_object(&self) -> Option<ObjectId> {
        self.inner.lock().stack.last().map(|f| f.object)
    }

    /// Run `f` with mutable access to the attributes.
    pub fn with_attributes<R>(&self, f: impl FnOnce(&mut ThreadAttributes) -> R) -> R {
        f(&mut self.inner.lock().attributes)
    }

    /// Check the termination flag as a `Result`, for kernel call sites.
    pub fn check_live(&self) -> Result<(), KernelError> {
        if self.is_terminated() {
            Err(KernelError::Terminated)
        } else {
            Ok(())
        }
    }
}

/// Outcome of [`Activation::wait_sync`].
#[derive(Debug, Clone, PartialEq)]
pub enum SyncWait {
    /// A handler resumed the raiser with this verdict.
    Resumed(Value),
    /// An event is pending and must be polled before waiting again.
    EventPending,
    /// The thread was terminated while waiting.
    Terminated,
    /// The deadline passed.
    TimedOut,
}

/// Outcome of [`Activation::sleep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepOutcome {
    /// Slept the full duration.
    Elapsed,
    /// Woken by a pending event.
    EventPending,
    /// The thread was terminated.
    Terminated,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventName, SystemEvent};
    use doct_net::NodeId;
    use std::sync::Arc;

    fn activation() -> Activation {
        Activation::new(ThreadAttributes::new(
            ThreadId::new(NodeId(0), 1),
            NodeId(0),
        ))
    }

    fn event(seq: u64) -> WireEvent {
        WireEvent {
            name: EventName::System(SystemEvent::Timer),
            payload: Value::Null,
            raiser: None,
            raiser_node: NodeId(0),
            seq,
            sync: false,
            t_raise_ns: 0,
            attrs: None,
            deadline_ns: None,
        }
    }

    fn named(seq: u64, name: EventName) -> WireEvent {
        WireEvent { name, ..event(seq) }
    }

    #[test]
    fn events_queue_fifo() {
        let a = activation();
        assert!(a.push_event(event(1)).is_stored());
        assert!(a.push_event(event(2)).is_stored());
        assert_eq!(a.pending_len(), 2);
        assert_eq!(a.take_event().unwrap().seq, 1);
        assert_eq!(a.take_event().unwrap().seq, 2);
        assert!(a.take_event().is_none());
    }

    #[test]
    fn control_events_preempt_queued_work() {
        let a = activation();
        assert!(a.push_event(named(1, EventName::user("W"))).is_stored());
        assert!(a.push_event(event(2)).is_stored());
        assert!(a
            .push_event(named(3, EventName::System(SystemEvent::Terminate)))
            .is_stored());
        assert_eq!(a.take_event().unwrap().seq, 3, "TERMINATE jumps the queue");
        assert_eq!(a.take_event().unwrap().seq, 1);
        assert_eq!(a.take_event().unwrap().seq, 2);
    }

    #[test]
    fn full_lane_sheds_and_reports_it() {
        let attrs = ThreadAttributes::new(ThreadId::new(NodeId(0), 9), NodeId(0));
        let a = Activation::with_mailbox(
            attrs,
            MailboxConfig {
                timer_capacity: 1,
                ..MailboxConfig::default()
            },
        );
        assert!(a.push_event(event(1)).is_stored());
        assert_eq!(a.push_event(event(2)), Admission::Shed(crate::Lane::Timer));
        assert_eq!(a.pending_len(), 1, "shed events are not queued");
    }

    #[test]
    fn depth_mirror_moves_on_stored_only_never_on_shed() {
        // The sweep and the per-reactor depth gauges read this mirror
        // without the activation lock; a shed that bumped it would
        // overstate the thread's load forever (nothing ever pops the
        // phantom entry). Increment-on-Stored-only is the contract.
        let attrs = ThreadAttributes::new(ThreadId::new(NodeId(0), 10), NodeId(0));
        let a = Activation::with_mailbox(
            attrs,
            MailboxConfig {
                timer_capacity: 1,
                ..MailboxConfig::default()
            },
        );
        assert!(a.push_event(event(1)).is_stored());
        assert_eq!(a.depth_hint(), 1);
        for seq in 2..10 {
            assert_eq!(
                a.push_event(event(seq)),
                Admission::Shed(crate::Lane::Timer)
            );
            assert_eq!(a.depth_hint(), 1, "a shed must never move the mirror");
        }
        let _ = a.take_event();
        assert_eq!(a.depth_hint(), 0, "mirror equals occupancy after drain");
    }

    #[test]
    fn handling_flag_masks_delivery() {
        let a = activation();
        assert!(a.push_event(event(1)).is_stored());
        a.lock().handling = true;
        assert!(a.take_event().is_none(), "masked while handling");
        a.lock().handling = false;
        assert!(a.take_event().is_some());
    }

    #[test]
    fn depth_hint_reads_without_the_activation_lock() {
        // Regression: the kernel sweep used to take the activation lock
        // to read the queue length, so it could observe the mailbox
        // mid-resize (and stall delivery under load). depth_hint must
        // answer even while someone else holds the lock.
        let a = activation();
        assert!(a.push_event(event(1)).is_stored());
        let guard = a.lock();
        assert_eq!(a.depth_hint(), 1, "no deadlock, no lock taken");
        drop(guard);
        let _ = a.take_event();
        assert_eq!(a.depth_hint(), 0);
    }

    #[test]
    fn sleep_returns_early_on_event() {
        let a = Arc::new(activation());
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            assert!(a2.push_event(event(1)).is_stored());
        });
        let t0 = Instant::now();
        let out = a.sleep(Duration::from_secs(5));
        assert_eq!(out, SleepOutcome::EventPending);
        assert!(t0.elapsed() < Duration::from_secs(2));
        h.join().unwrap();
    }

    #[test]
    fn sleep_elapses_quietly() {
        let a = activation();
        let out = a.sleep(Duration::from_millis(10));
        assert_eq!(out, SleepOutcome::Elapsed);
    }

    #[test]
    fn sync_wait_resumes_on_result() {
        let a = Arc::new(activation());
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a2.push_sync_result(7, Value::Int(99));
        });
        let out = a.wait_sync(7, Instant::now() + Duration::from_secs(5));
        assert_eq!(out, SyncWait::Resumed(Value::Int(99)));
        h.join().unwrap();
    }

    #[test]
    fn sync_wait_interrupts_for_pending_events() {
        let a = activation();
        assert!(a.push_event(event(1)).is_stored());
        let out = a.wait_sync(7, Instant::now() + Duration::from_secs(5));
        assert_eq!(out, SyncWait::EventPending);
    }

    #[test]
    fn sync_wait_times_out() {
        let a = activation();
        let out = a.wait_sync(7, Instant::now() + Duration::from_millis(10));
        assert_eq!(out, SyncWait::TimedOut);
    }

    #[test]
    fn termination_wakes_everything() {
        let a = Arc::new(activation());
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a2.mark_terminated();
        });
        assert_eq!(a.sleep(Duration::from_secs(5)), SleepOutcome::Terminated);
        assert!(a.check_live().is_err());
        h.join().unwrap();
    }
}
