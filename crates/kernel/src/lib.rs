#![warn(missing_docs)]
//! # doct-kernel — the Distributed-Object/Concurrent-Thread kernel
//!
//! The substrate the paper's event facility assumes (§8): passive,
//! persistent objects; logical threads that span machine boundaries;
//! RPC and DSM invocation mechanisms; thread attributes that travel with
//! the thread; thread groups; and the three thread-location facilities of
//! §7.1 (broadcast, path-trace over thread-control blocks, multicast
//! groups).
//!
//! A [`Cluster`] is an in-process simulation of an `n`-machine Clouds-style
//! system. Every cross-node interaction is a real asynchronous message
//! over [`doct_net`], counted per [`doct_net::MessageClass`] so the
//! communication-cost claims of the paper can be measured.
//!
//! The kernel deliberately has *mechanism, not policy* for events: it can
//! queue a [`WireEvent`] at a thread's tip or an object's home node and it
//! knows the delivery points, but what handlers run — thread-based
//! chains, buddy handlers, object handlers — is the [`EventDispatcher`]
//! installed by the `doct-events` crate.
//!
//! # Example
//!
//! ```
//! use doct_kernel::{ClassBuilder, Cluster, ObjectConfig, Value};
//! use doct_net::NodeId;
//!
//! # fn main() -> Result<(), doct_kernel::KernelError> {
//! let cluster = Cluster::new(2);
//! cluster.register_class(
//!     "greeter",
//!     ClassBuilder::new("greeter")
//!         .entry("hello", |_ctx, args| {
//!             Ok(Value::Str(format!("hello {}", args.as_str().unwrap_or("?"))))
//!         })
//!         .build(),
//! );
//! // Object homed on node 1, invoked from a thread rooted on node 0:
//! // the logical thread crosses the machine boundary.
//! let obj = cluster.create_object(ObjectConfig::new("greeter", NodeId(1)))?;
//! let handle = cluster.spawn(0, obj, "hello", "world")?;
//! assert_eq!(handle.join()?, Value::Str("hello world".into()));
//! # Ok(())
//! # }
//! ```

mod activation;
mod attributes;
mod cluster;
mod config;
mod ctx;
mod error;
mod event;
mod group;
mod ids;
mod location_cache;
mod mailbox;
mod message;
mod node;
mod object;
mod reactor;
mod shard_table;
mod tcb;
mod value;
mod wire;

pub use activation::{Activation, ActivationInner, Frame, SleepOutcome, SyncWait};
pub use attributes::{Extension, ThreadAttributes, TimerSpec};
pub use cluster::{Cluster, ClusterBuilder, ObjectImage, SpawnOptions, ThreadHandle};
pub use config::{
    FabricChoice, InvocationMode, KernelConfig, LocatorStrategy, ObjectEventExecution,
};
pub use ctx::{AsyncInvocation, Ctx};
pub use error::KernelError;
pub use event::{
    DefaultDispatcher, DeliveryStatus, EventDispatcher, EventName, Lane, RaiseTarget, SystemEvent,
    ThreadDisposition, WireEvent,
};
pub use group::GroupRegistry;
pub use ids::{ObjectId, ThreadGroupId, ThreadId};
pub use location_cache::{LocationCache, LocationCacheConfig};
pub use mailbox::{Admission, Mailbox, MailboxConfig};
pub use message::{KernelMessage, ReceiptVerdict};
pub use node::{DeliverySummary, IoHub, KernelStats, NodeKernel, RaiseTicket, TimerCmd};
pub use object::{
    ClassBuilder, ClassRegistry, ObjectBehavior, ObjectConfig, ObjectDirectory, ObjectRecord,
};
pub use reactor::StealQueue;
pub use shard_table::{shard_of, Insert, ShardedTable, SHARDS};
pub use tcb::{Hop, TcbTable, Trail};
pub use value::{DecodeError, Value};

/// Shared immutable payload buffer (re-exported from `doct-net`): clones
/// are refcount bumps, so event payloads fan out without byte copies.
pub use doct_net::Bytes;

/// The most commonly used kernel types.
pub mod prelude {
    pub use crate::{
        ClassBuilder, Cluster, ClusterBuilder, Ctx, DeliveryStatus, EventName, InvocationMode,
        KernelConfig, KernelError, Lane, LocatorStrategy, MailboxConfig, ObjectConfig,
        ObjectEventExecution, ObjectId, RaiseTarget, SpawnOptions, SystemEvent, ThreadGroupId,
        ThreadHandle, ThreadId, Value,
    };
}
