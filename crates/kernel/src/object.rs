//! Passive, persistent objects.
//!
//! An object is code (its *class*, replicated everywhere, as code pages
//! would be) plus state (a [`doct_dsm`] segment homed at the creating
//! node) plus a directory record. Objects exist without any thread in
//! them and can be invoked by any thread, from any application (paper §2).

use crate::{Ctx, KernelError, ObjectId, Value};
use doct_dsm::SegmentInfo;
use doct_net::NodeId;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The code of an object class: dispatches entry-point invocations.
///
/// Implementations must be stateless or share-safe — per-object state
/// belongs in the object's DSM-resident state (via
/// [`Ctx::with_state`]), never in the behavior, or DSM-mode invocation
/// (which executes the class code on the *caller's* node) would diverge
/// from RPC mode.
pub trait ObjectBehavior: Send + Sync {
    /// Execute `entry` with `args` on behalf of the logical thread in
    /// `ctx`.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownEntry`] for unknown entries, or whatever the
    /// entry's own logic fails with.
    fn dispatch(&self, ctx: &mut Ctx, entry: &str, args: Value) -> Result<Value, KernelError>;

    /// Entry points, for diagnostics (optional).
    fn entries(&self) -> Vec<String> {
        Vec::new()
    }

    /// The exceptional events `entry` declares it may raise — the §5.2
    /// "entry point signatures in the object interface specify exceptional
    /// events raised by the entry points". Default: none declared.
    fn declared_exceptions(&self, entry: &str) -> Vec<crate::EventName> {
        let _ = entry;
        Vec::new()
    }
}

type EntryFn = dyn Fn(&mut Ctx, Value) -> Result<Value, KernelError> + Send + Sync;

/// Build a class from per-entry closures.
///
/// ```
/// use doct_kernel::{ClassBuilder, Value};
///
/// let class = ClassBuilder::new("counter")
///     .entry("bump", |ctx, _args| {
///         ctx.with_state(|s| {
///             let n = s.get("n").and_then(Value::as_int).unwrap_or(0);
///             s.set("n", n + 1);
///             Value::Int(n + 1)
///         })
///     })
///     .build();
/// assert_eq!(class.entries(), vec!["bump".to_string()]);
/// ```
pub struct ClassBuilder {
    name: String,
    entries: BTreeMap<String, Arc<EntryFn>>,
    raises: BTreeMap<String, Vec<crate::EventName>>,
}

impl fmt::Debug for ClassBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassBuilder")
            .field("name", &self.name)
            .field("entries", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ClassBuilder {
    /// Start building a class called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            name: name.into(),
            entries: BTreeMap::new(),
            raises: BTreeMap::new(),
        }
    }

    /// Add an entry point.
    pub fn entry(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&mut Ctx, Value) -> Result<Value, KernelError> + Send + Sync + 'static,
    ) -> Self {
        self.entries.insert(name.into(), Arc::new(f));
        self
    }

    /// Declare the exceptional events `entry` may raise (§5.2: "entry
    /// point signatures in the object interface specify exceptional
    /// events raised by the entry points"). Invokers use this to know
    /// what to attach handlers for; `doct-services`' checked throw
    /// enforces it.
    pub fn entry_raises(mut self, entry: impl Into<String>, events: &[crate::EventName]) -> Self {
        self.raises.insert(entry.into(), events.to_vec());
        self
    }

    /// Finish: the result is registered with
    /// [`crate::Cluster::register_class`].
    pub fn build(self) -> Arc<dyn ObjectBehavior> {
        Arc::new(FnBehavior {
            name: self.name,
            entries: self.entries,
            raises: self.raises,
        })
    }
}

struct FnBehavior {
    name: String,
    entries: BTreeMap<String, Arc<EntryFn>>,
    raises: BTreeMap<String, Vec<crate::EventName>>,
}

impl ObjectBehavior for FnBehavior {
    fn dispatch(&self, ctx: &mut Ctx, entry: &str, args: Value) -> Result<Value, KernelError> {
        let f = self
            .entries
            .get(entry)
            .ok_or_else(|| KernelError::UnknownEntry {
                object: ctx.current_object().unwrap_or(ObjectId(0)),
                entry: format!("{}::{entry}", self.name),
            })?
            .clone();
        f(ctx, args)
    }

    fn entries(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    fn declared_exceptions(&self, entry: &str) -> Vec<crate::EventName> {
        self.raises.get(entry).cloned().unwrap_or_default()
    }
}

/// Cluster-wide registry of class code (code is replicated on every node,
/// like compiled object code in Clouds).
#[derive(Default)]
pub struct ClassRegistry {
    classes: RwLock<HashMap<String, Arc<dyn ObjectBehavior>>>,
}

impl fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassRegistry")
            .field("classes", &self.classes.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ClassRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the code for `name`.
    pub fn register(&self, name: impl Into<String>, behavior: Arc<dyn ObjectBehavior>) {
        self.classes.write().insert(name.into(), behavior);
    }

    /// Look up the code for `name`.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ObjectBehavior>> {
        self.classes.read().get(name).cloned()
    }
}

/// Configuration for creating an object.
#[derive(Debug, Clone)]
pub struct ObjectConfig {
    /// Class name (must be registered).
    pub class: String,
    /// Home node (state segment manager; RPC invocations execute here).
    pub home: NodeId,
    /// Capacity of the state segment in bytes.
    pub state_size: usize,
    /// Initial state value.
    pub initial_state: Value,
    /// Serialize entry executions on this object ("objects *may* allow
    /// concurrent execution by multiple threads", §2 — exclusive objects
    /// do not, which is what the lock manager needs for atomicity).
    pub exclusive: bool,
}

impl ObjectConfig {
    /// Standard config: 64 KiB state, null initial state.
    pub fn new(class: impl Into<String>, home: NodeId) -> Self {
        ObjectConfig {
            class: class.into(),
            home,
            state_size: 64 * 1024,
            initial_state: Value::Null,
            exclusive: false,
        }
    }

    /// Set the initial state.
    pub fn with_state(mut self, state: Value) -> Self {
        self.initial_state = state;
        self
    }

    /// Set the state segment capacity.
    pub fn with_state_size(mut self, bytes: usize) -> Self {
        self.state_size = bytes;
        self
    }

    /// Make entry executions mutually exclusive.
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }
}

/// The directory record of one object.
pub struct ObjectRecord {
    /// Object identity.
    pub id: ObjectId,
    /// Class name.
    pub class: String,
    /// Home node.
    pub home: NodeId,
    /// DSM segment holding the encoded state.
    pub state_segment: SegmentInfo,
    /// Typed extension bag for higher layers (the event facility keeps
    /// the object's handler table here, at most one writer at a time).
    extensions: Mutex<BTreeMap<&'static str, Arc<dyn Any + Send + Sync>>>,
    /// Serialize entry executions (see [`ObjectConfig::exclusive`]).
    pub exclusive: bool,
    run_lock: Mutex<()>,
}

impl fmt::Debug for ObjectRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectRecord")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("home", &self.home)
            .finish_non_exhaustive()
    }
}

impl ObjectRecord {
    /// Construct a record (used by the cluster at creation time).
    pub fn new(id: ObjectId, class: String, home: NodeId, state_segment: SegmentInfo) -> Self {
        Self::with_exclusive(id, class, home, state_segment, false)
    }

    /// Construct a record with explicit exclusivity.
    pub fn with_exclusive(
        id: ObjectId,
        class: String,
        home: NodeId,
        state_segment: SegmentInfo,
        exclusive: bool,
    ) -> Self {
        ObjectRecord {
            id,
            class,
            home,
            state_segment,
            extensions: Mutex::new(BTreeMap::new()),
            exclusive,
            run_lock: Mutex::new(()),
        }
    }

    /// Hold the execution lock while `f` runs, if the object is exclusive.
    pub fn run_exclusive<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.exclusive {
            let _g = self.run_lock.lock();
            // The run lock is *meant* to be held across the whole entry
            // execution, including nested blocking calls — exempt it from
            // lockdep's lock-held-across-blocking-point check.
            parking_lot::lockdep::mark_newest_held_semantic();
            f()
        } else {
            f()
        }
    }

    /// Install or replace a typed extension under `key`.
    pub fn set_extension(&self, key: &'static str, ext: Arc<dyn Any + Send + Sync>) {
        self.extensions.lock().insert(key, ext);
    }

    /// Fetch the extension stored under `key`, downcast to `T`.
    pub fn extension<T: Any + Send + Sync>(&self, key: &str) -> Option<Arc<T>> {
        let ext = self.extensions.lock().get(key)?.clone();
        ext.downcast::<T>().ok()
    }

    /// Fetch the extension under `key`, or install the one produced by
    /// `init` if absent (atomic with respect to other callers).
    pub fn extension_or_insert_with<T: Any + Send + Sync>(
        &self,
        key: &'static str,
        init: impl FnOnce() -> Arc<T>,
    ) -> Arc<T> {
        let mut exts = self.extensions.lock();
        if let Some(found) = exts.get(key).cloned().and_then(|e| e.downcast::<T>().ok()) {
            return found;
        }
        let fresh = init();
        exts.insert(key, fresh.clone());
        fresh
    }
}

/// Cluster-wide object directory: every node can resolve an object's home
/// and state segment (a replicated name service; real Clouds used a
/// distributed naming protocol, which is orthogonal to event handling).
#[derive(Debug, Default)]
pub struct ObjectDirectory {
    objects: RwLock<HashMap<ObjectId, Arc<ObjectRecord>>>,
}

impl ObjectDirectory {
    /// Fresh empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a newly created object.
    pub fn insert(&self, record: Arc<ObjectRecord>) {
        self.objects.write().insert(record.id, record);
    }

    /// Resolve an object.
    pub fn get(&self, id: ObjectId) -> Option<Arc<ObjectRecord>> {
        self.objects.read().get(&id).cloned()
    }

    /// Remove an object (DELETE semantics).
    pub fn remove(&self, id: ObjectId) -> Option<Arc<ObjectRecord>> {
        self.objects.write().remove(&id)
    }

    /// All object ids, for diagnostics.
    pub fn ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doct_dsm::{Backing, SegmentId};

    fn record(seq: u32) -> ObjectRecord {
        let seg = SegmentInfo {
            id: SegmentId::new(NodeId(0), seq),
            manager: NodeId(0),
            size: 1024,
            page_size: 1024,
            backing: Backing::Kernel,
        };
        ObjectRecord::new(ObjectId::new(NodeId(0), seq), "c".into(), NodeId(0), seg)
    }

    #[test]
    fn directory_insert_get_remove() {
        let d = ObjectDirectory::new();
        let r = Arc::new(record(1));
        let id = r.id;
        d.insert(Arc::clone(&r));
        assert_eq!(d.get(id).unwrap().class, "c");
        assert_eq!(d.len(), 1);
        assert!(d.remove(id).is_some());
        assert!(d.get(id).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn record_extension_round_trip() {
        let r = record(1);
        r.set_extension("tag", Arc::new(42u32));
        assert_eq!(*r.extension::<u32>("tag").unwrap(), 42);
        assert!(r.extension::<String>("tag").is_none(), "wrong type");
        assert!(r.extension::<u32>("missing").is_none());
    }

    #[test]
    fn extension_or_insert_initializes_once() {
        let r = record(1);
        let a = r.extension_or_insert_with("v", || Arc::new(Mutex::new(1u32)));
        *a.lock() = 7;
        let b = r.extension_or_insert_with("v", || Arc::new(Mutex::new(999u32)));
        assert_eq!(*b.lock(), 7, "second call returns the first value");
    }

    #[test]
    fn class_registry_round_trip() {
        let reg = ClassRegistry::new();
        assert!(reg.get("c").is_none());
        reg.register("c", ClassBuilder::new("c").build());
        assert!(reg.get("c").is_some());
    }

    #[test]
    fn object_config_builder() {
        let cfg = ObjectConfig::new("c", NodeId(2))
            .with_state(Value::Int(1))
            .with_state_size(4096);
        assert_eq!(cfg.home, NodeId(2));
        assert_eq!(cfg.state_size, 4096);
        assert_eq!(cfg.initial_state, Value::Int(1));
    }
}
