//! The invocation context: what an entry point (or event handler) sees of
//! the kernel. One `Ctx` exists per frame-run of a logical thread on a
//! node; it carries the thread's activation and exposes invocation, state
//! access, event raising, and the delivery points.

use crate::activation::{Activation, SleepOutcome, SyncWait};
use crate::config::InvocationMode;
use crate::node::{NodeKernel, RaiseTicket};
use crate::{
    EventName, KernelError, ObjectId, RaiseTarget, SystemEvent, ThreadAttributes,
    ThreadDisposition, ThreadId, Value, WireEvent,
};
use crossbeam::channel::Receiver;
use doct_net::NodeId;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle to an asynchronously spawned invocation — a child logical
/// thread. "Claimable" in the paper's sense: call
/// [`AsyncInvocation::claim`] to wait for the result, or drop the handle
/// for a non-claimable invocation (§7.1 notes the system may lose track of
/// those; here the child still runs to completion).
#[derive(Debug)]
pub struct AsyncInvocation {
    thread: ThreadId,
    rx: Receiver<Result<Value, KernelError>>,
}

impl AsyncInvocation {
    /// The child logical thread's id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Block until the child finishes and take its result.
    ///
    /// # Errors
    ///
    /// Whatever the child's invocation failed with, or
    /// [`KernelError::Timeout`] if the child vanished.
    pub fn claim(self) -> Result<Value, KernelError> {
        self.rx
            .recv()
            .unwrap_or(Err(KernelError::Timeout("async invocation lost".into())))
    }

    /// Non-blocking check: `None` while the child still runs.
    pub fn try_claim(&self) -> Option<Result<Value, KernelError>> {
        self.rx.try_recv().ok()
    }
}

struct HandlingGuard {
    activation: Arc<Activation>,
}

impl Drop for HandlingGuard {
    fn drop(&mut self) {
        self.activation.lock().handling = false;
    }
}

/// Execution context of a logical thread on one node.
pub struct Ctx {
    kernel: Arc<NodeKernel>,
    activation: Arc<Activation>,
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.kernel.node_id())
            .field("thread", &self.activation.thread)
            .finish()
    }
}

impl Ctx {
    /// Construct a context for `activation` on `kernel` (kernel-internal).
    pub fn new(kernel: Arc<NodeKernel>, activation: Arc<Activation>) -> Self {
        Ctx { kernel, activation }
    }

    /// The node this frame executes on.
    pub fn node_id(&self) -> NodeId {
        self.kernel.node_id()
    }

    /// The logical thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.activation.thread
    }

    /// The node kernel (for facility-level extensions).
    pub fn kernel(&self) -> &Arc<NodeKernel> {
        &self.kernel
    }

    /// The thread's activation on this node (for facility-level
    /// extensions).
    pub fn activation(&self) -> &Arc<Activation> {
        &self.activation
    }

    /// The object whose code is currently executing, if any.
    pub fn current_object(&self) -> Option<ObjectId> {
        self.activation.current_object()
    }

    /// Current invocation depth (0 outside any object).
    pub fn current_depth(&self) -> u32 {
        self.activation.lock().stack.last().map_or(0, |f| f.depth)
    }

    /// Name of the entry point currently executing, if any.
    pub fn current_entry(&self) -> Option<String> {
        self.activation.lock().stack.last().map(|f| f.entry.clone())
    }

    /// The exceptional events the current entry point declares it may
    /// raise (§5.2 entry-point signatures); empty outside any object.
    pub fn declared_exceptions(&self) -> Vec<EventName> {
        let (Some(object), Some(entry)) = (self.current_object(), self.current_entry()) else {
            return Vec::new();
        };
        let Some(record) = self.kernel.directory().get(object) else {
            return Vec::new();
        };
        self.kernel
            .classes()
            .get(&record.class)
            .map(|b| b.declared_exceptions(&entry))
            .unwrap_or_default()
    }

    /// Snapshot of the thread's attributes.
    pub fn attributes(&self) -> ThreadAttributes {
        self.activation.attributes_snapshot()
    }

    /// Mutate the thread's attributes in place.
    pub fn with_attributes<R>(&mut self, f: impl FnOnce(&mut ThreadAttributes) -> R) -> R {
        self.activation.with_attributes(f)
    }

    /// Write a line to the thread's I/O channel (§3.1: output follows the
    /// thread across objects).
    pub fn emit(&self, line: impl Into<String>) {
        let channel = self
            .activation
            .lock()
            .attributes
            .io_channel
            .clone()
            .unwrap_or_else(|| "stdout".to_string());
        self.kernel.io().emit(&channel, line);
    }

    // ------------------------------------------------------------------
    // Delivery points
    // ------------------------------------------------------------------

    /// Delivery point: synchronously handle every pending event.
    ///
    /// Called implicitly at invocation entry/exit and around blocking
    /// kernel operations; long-running entry points should call it (or
    /// [`Ctx::compute`]) periodically.
    ///
    /// # Errors
    ///
    /// [`KernelError::Terminated`] if the thread was terminated (by this
    /// poll or an earlier one): the frame must unwind.
    pub fn poll_events(&mut self) -> Result<(), KernelError> {
        self.activation.check_live()?;
        // Pass the telemetry clock so near-deadline timers jump the USER
        // lane at this delivery point.
        while let Some(event) = self
            .activation
            .take_event_at(self.kernel.telemetry().now_ns())
        {
            let seq = event.seq;
            self.activation.lock().handling = true;
            let disposition = {
                let _guard = HandlingGuard {
                    activation: Arc::clone(&self.activation),
                };
                let dispatcher = self.kernel.dispatcher();
                dispatcher.deliver_to_thread(self, event)
            };
            // Handler chain done, disposition decided: the unwind/ack
            // stage of the event's lifecycle.
            self.kernel.telemetry().trace(
                seq,
                doct_telemetry::Stage::Unwind,
                u64::from(self.kernel.node_id().0),
                doct_telemetry::RaiseVariant::None,
            );
            if disposition == ThreadDisposition::Terminate {
                self.activation.mark_terminated();
                return Err(KernelError::Terminated);
            }
        }
        Ok(())
    }

    /// Simulated computation: advances the thread's program counter by
    /// `units`, hitting a delivery point every 64 units. The §6.2 monitor
    /// samples the program counter this advances.
    ///
    /// # Errors
    ///
    /// [`KernelError::Terminated`] via the embedded delivery points.
    pub fn compute(&mut self, units: u64) -> Result<(), KernelError> {
        let mut done = 0u64;
        let mut sink = 0u64;
        while done < units {
            let burst = 64.min(units - done);
            for i in 0..burst {
                // A little real arithmetic so benches measure something.
                sink = sink.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(sink);
            done += burst;
            self.activation.lock().pc += burst;
            self.poll_events()?;
        }
        Ok(())
    }

    /// Simulated computation with **no** embedded delivery points: the
    /// thread is unresponsive for the whole burst (models a tight loop
    /// between delivery points; used by the delivery-point-density
    /// ablation, E4b).
    pub fn compute_uninterruptible(&mut self, units: u64) {
        let mut sink = 0u64;
        for i in 0..units {
            sink = sink.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(sink);
        self.activation.lock().pc += units;
    }

    /// The simulated program counter (monitor's sample, §6.2).
    pub fn pc(&self) -> u64 {
        self.activation.lock().pc
    }

    /// Event-responsive sleep.
    ///
    /// # Errors
    ///
    /// [`KernelError::Terminated`] if terminated while sleeping.
    pub fn sleep(&mut self, duration: Duration) -> Result<(), KernelError> {
        let deadline = Instant::now() + duration;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.activation.sleep(remaining) {
                SleepOutcome::Elapsed => return Ok(()),
                SleepOutcome::Terminated => return Err(KernelError::Terminated),
                SleepOutcome::EventPending => self.poll_events()?,
            }
        }
    }

    // ------------------------------------------------------------------
    // Invocations
    // ------------------------------------------------------------------

    /// Invoke `entry` on `object`: the same logical thread executes the
    /// called object's code (paper §2). In RPC mode the thread travels to
    /// the object's home node; in DSM mode the code runs here and the
    /// object's state pages fault across.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownObject`]/[`KernelError::UnknownEntry`] for
    /// resolution failures, [`KernelError::Terminated`] if the thread was
    /// terminated at a delivery point, or whatever the entry fails with.
    pub fn invoke(
        &mut self,
        object: ObjectId,
        entry: &str,
        args: impl Into<Value>,
    ) -> Result<Value, KernelError> {
        self.poll_events()?;
        let args = args.into();
        let record = self
            .kernel
            .directory()
            .get(object)
            .ok_or(KernelError::UnknownObject(object))?;
        let depth = self.current_depth() + 1;
        let thread = self.thread_id();
        let result = match self.kernel.config().invocation_mode {
            InvocationMode::Dsm => {
                self.kernel
                    .execute_local(&self.activation, object, entry, args, depth)
            }
            InvocationMode::Rpc => {
                if record.home == self.kernel.node_id() {
                    self.kernel
                        .execute_local(&self.activation, object, entry, args, depth)
                } else {
                    let attrs = self.activation.attributes_snapshot();
                    self.kernel.tcbs().depart(thread, record.home);
                    let outcome =
                        self.kernel
                            .call_remote(record.home, object, entry, args, attrs, depth);
                    self.kernel.tcbs().returned(thread);
                    match outcome {
                        Ok((result, attrs_back)) => {
                            self.activation.with_attributes(|a| *a = attrs_back);
                            result
                        }
                        Err(e) => Err(e),
                    }
                }
            }
        };
        if matches!(result, Err(KernelError::Terminated)) {
            // The thread was terminated while away; this node's frames
            // must unwind too.
            self.activation.mark_terminated();
            return Err(KernelError::Terminated);
        }
        self.poll_events()?;
        result
    }

    /// Spawn a *child logical thread* that performs one invocation — the
    /// paper's asynchronous invocation. The child inherits this thread's
    /// attributes, including its group and event registry (§6.3).
    pub fn invoke_async(
        &mut self,
        object: ObjectId,
        entry: &str,
        args: impl Into<Value>,
    ) -> AsyncInvocation {
        let args = args.into();
        let child_id = self.kernel.new_thread_id();
        let attrs = self
            .activation
            .lock()
            .attributes
            .inherit_for(child_id, self.kernel.node_id());
        let entry = entry.to_string();
        let rx = self
            .kernel
            .spawn_logical(attrs, move |ctx| ctx.invoke(object, &entry, args));
        AsyncInvocation {
            thread: child_id,
            rx,
        }
    }

    // ------------------------------------------------------------------
    // Object state
    // ------------------------------------------------------------------

    fn state_segment(&self, object: ObjectId) -> Result<doct_dsm::SegmentInfo, KernelError> {
        Ok(self
            .kernel
            .directory()
            .get(object)
            .ok_or(KernelError::UnknownObject(object))?
            .state_segment)
    }

    fn current_object_checked(&self) -> Result<ObjectId, KernelError> {
        self.current_object().ok_or_else(|| {
            KernelError::InvalidArgument("state access outside any object".to_string())
        })
    }

    /// Read the current object's state.
    ///
    /// # Errors
    ///
    /// State access outside an object, DSM failures, or decode failures.
    pub fn read_state(&self) -> Result<Value, KernelError> {
        let object = self.current_object_checked()?;
        self.read_state_of(object)
    }

    /// Read the state of an arbitrary object (used by handlers that must
    /// examine another object's state).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::read_state`].
    pub fn read_state_of(&self, object: ObjectId) -> Result<Value, KernelError> {
        let seg = self.state_segment(object)?;
        let dsm = self.kernel.dsm();
        let len_bytes = dsm.read(seg.id, 0, 4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len == 0 {
            return Ok(Value::Null);
        }
        let raw = dsm.read(seg.id, 4, len)?;
        Ok(Value::decode(&raw)?)
    }

    /// Read–modify–write the current object's state.
    ///
    /// Not atomic across concurrent invokers on different nodes (DSM gives
    /// page-level coherence, not transactions — the paper's applications
    /// use the distributed lock manager for mutual exclusion).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::read_state`], plus [`KernelError::StateTooLarge`].
    pub fn with_state<R>(&mut self, f: impl FnOnce(&mut Value) -> R) -> Result<R, KernelError> {
        let object = self.current_object_checked()?;
        let mut state = self.read_state_of(object)?;
        let result = f(&mut state);
        self.write_state_of(object, &state)?;
        Ok(result)
    }

    /// Overwrite the state of `object`.
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::with_state`].
    pub fn write_state_of(&mut self, object: ObjectId, state: &Value) -> Result<(), KernelError> {
        let seg = self.state_segment(object)?;
        let enc = state.encode();
        if 4 + enc.len() > seg.size {
            return Err(KernelError::StateTooLarge {
                object,
                need: 4 + enc.len(),
                capacity: seg.size,
            });
        }
        let dsm = self.kernel.dsm();
        dsm.write(seg.id, 0, &(enc.len() as u32).to_le_bytes())?;
        dsm.write(seg.id, 4, &enc)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Events (kernel-level; the facility wraps these with handler
    // semantics)
    // ------------------------------------------------------------------

    /// Asynchronously raise an event (the `raise(e, …)` calls of §5.3).
    /// The returned ticket resolves to the delivery receipts; drop it for
    /// fire-and-forget.
    pub fn raise(
        &mut self,
        name: impl Into<EventName>,
        payload: impl Into<Value>,
        target: impl Into<RaiseTarget>,
    ) -> RaiseTicket {
        let (ticket, _seq) = self.kernel.raise_event(
            name.into(),
            payload.into(),
            target.into(),
            false,
            Some(&self.activation),
        );
        ticket
    }

    /// Synchronously raise an event (`raise_and_wait`, §5.3): blocks until
    /// a handler resumes this thread, returning the handler's verdict.
    ///
    /// # Errors
    ///
    /// [`KernelError::Event`] if no recipient exists,
    /// [`KernelError::Terminated`] if terminated while blocked,
    /// [`KernelError::Timeout`] if no handler resumes us in time.
    pub fn raise_and_wait(
        &mut self,
        name: impl Into<EventName>,
        payload: impl Into<Value>,
        target: impl Into<RaiseTarget>,
    ) -> Result<Value, KernelError> {
        let name = name.into();
        let (ticket, seq) = self.kernel.raise_event(
            name.clone(),
            payload.into(),
            target.into(),
            true,
            Some(&self.activation),
        );
        let summary = ticket.wait();
        if summary.delivered == 0 {
            return Err(KernelError::Event(format!(
                "raise_and_wait({name}): no recipient (dead={}, timeout={}, lost={}, \
                 overloaded={})",
                summary.dead, summary.timed_out, summary.lost, summary.overloaded
            )));
        }
        let deadline = Instant::now() + self.kernel.config().sync_timeout;
        loop {
            match self.activation.wait_sync(seq, deadline) {
                SyncWait::Resumed(v) => return Ok(v),
                SyncWait::EventPending => self.poll_events()?,
                SyncWait::Terminated => return Err(KernelError::Terminated),
                SyncWait::TimedOut => {
                    return Err(KernelError::Timeout(format!("raise_and_wait({name})")))
                }
            }
        }
    }

    /// Resume the raiser of a synchronous event with `verdict`
    /// (facility-facing: handlers call this through the facility API).
    pub fn resume_raiser(&self, event: &WireEvent, verdict: impl Into<Value>) {
        self.kernel.resume_sync_raiser(event, verdict.into());
    }

    /// Checked division that raises `DIV_ZERO` *synchronously to this
    /// thread* when `b == 0`, exactly like the paper's "division by zero
    /// … leads to the raising of a system event" (§3). A handler may
    /// repair the fault by resuming with a substitute value.
    ///
    /// # Errors
    ///
    /// [`KernelError::InvocationFailed`] if no handler repaired the fault.
    pub fn checked_div(&mut self, a: i64, b: i64) -> Result<i64, KernelError> {
        if b != 0 {
            return Ok(a / b);
        }
        let mut payload = Value::map();
        payload.set("numerator", a);
        let verdict = self.raise_and_wait(
            SystemEvent::DivZero,
            payload,
            RaiseTarget::Thread(self.thread_id()),
        )?;
        match verdict.as_int() {
            Some(repaired) => Ok(repaired),
            None => Err(KernelError::InvocationFailed(
                "division by zero (unrepaired)".to_string(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Register a periodic TIMER event for this thread (§6.2). The timer
    /// chases the thread wherever it executes. Returns the timer id.
    ///
    /// The payload is cloned into the thread's attribute ring and the
    /// timer service, and again at every fire — all refcount bumps for
    /// [`crate::Bytes`] payloads, so periodic timers with large payloads
    /// never re-copy them (DESIGN.md §3g).
    pub fn add_timer(&mut self, period: Duration, payload: impl Into<Value>) -> u64 {
        let id = self.kernel.next_seq();
        let payload = payload.into();
        self.activation.with_attributes(|a| {
            a.timers.push(crate::attributes::TimerSpec {
                period,
                payload: payload.clone(),
                id,
            })
        });
        self.kernel
            .register_timer(self.thread_id(), id, period, payload);
        id
    }

    /// Register a one-shot ALARM event for this thread, firing after
    /// `delay` (§3 lists alarms among the system events). Returns the
    /// alarm id (cancellable with [`Ctx::cancel_timer`] before it fires).
    pub fn set_alarm(&mut self, delay: Duration, payload: impl Into<Value>) -> u64 {
        let id = self.kernel.next_seq();
        self.kernel
            .register_alarm(self.thread_id(), id, delay, payload.into());
        id
    }

    /// Cancel a timer created with [`Ctx::add_timer`].
    pub fn cancel_timer(&mut self, id: u64) {
        self.activation
            .with_attributes(|a| a.timers.retain(|t| t.id != id));
        self.kernel.cancel_timer(self.thread_id(), id);
    }
}
