//! Thread groups (paper §5.3), modelled on V-kernel process groups: an
//! event posted to a group is sent to every member.
//!
//! The registry is a cluster-wide name service (like the object
//! directory); the *event fan-out* still happens per member over the
//! network, so group raises are charged their true communication cost.

use crate::{ThreadGroupId, ThreadId};
use doct_net::NodeId;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};

/// Cluster-wide thread-group membership.
#[derive(Debug, Default)]
pub struct GroupRegistry {
    groups: RwLock<HashMap<ThreadGroupId, BTreeSet<ThreadId>>>,
    next_seq: AtomicU32,
}

impl GroupRegistry {
    /// Fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new empty group, attributed to `creator`.
    pub fn create(&self, creator: NodeId) -> ThreadGroupId {
        let id = ThreadGroupId::new(creator, self.next_seq.fetch_add(1, Ordering::Relaxed));
        self.groups.write().insert(id, BTreeSet::new());
        id
    }

    /// Add a member; creates the group if unknown (join-creates, handy for
    /// inherited group ids). Returns `true` if newly added.
    pub fn join(&self, group: ThreadGroupId, thread: ThreadId) -> bool {
        self.groups.write().entry(group).or_default().insert(thread)
    }

    /// Remove a member (threads leave on exit). Returns `true` if it was a
    /// member. Empty groups persist until [`GroupRegistry::remove_group`].
    pub fn leave(&self, group: ThreadGroupId, thread: ThreadId) -> bool {
        self.groups
            .write()
            .get_mut(&group)
            .is_some_and(|m| m.remove(&thread))
    }

    /// Delete a group entirely.
    pub fn remove_group(&self, group: ThreadGroupId) {
        self.groups.write().remove(&group);
    }

    /// Current members, in id order.
    pub fn members(&self, group: ThreadGroupId) -> Vec<ThreadId> {
        self.groups
            .read()
            .get(&group)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Whether `thread` belongs to `group`.
    pub fn is_member(&self, group: ThreadGroupId, thread: ThreadId) -> bool {
        self.groups
            .read()
            .get(&group)
            .is_some_and(|m| m.contains(&thread))
    }

    /// Number of members (0 for unknown groups).
    pub fn member_count(&self, group: ThreadGroupId) -> usize {
        self.groups.read().get(&group).map_or(0, |m| m.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u32) -> ThreadId {
        ThreadId::new(NodeId(0), seq)
    }

    #[test]
    fn create_join_leave() {
        let r = GroupRegistry::new();
        let g = r.create(NodeId(0));
        assert!(r.join(g, t(1)));
        assert!(r.join(g, t(2)));
        assert!(!r.join(g, t(2)), "double join is a no-op");
        assert_eq!(r.members(g), vec![t(1), t(2)]);
        assert!(r.leave(g, t(1)));
        assert!(!r.leave(g, t(1)));
        assert_eq!(r.member_count(g), 1);
    }

    #[test]
    fn distinct_groups_get_distinct_ids() {
        let r = GroupRegistry::new();
        let a = r.create(NodeId(0));
        let b = r.create(NodeId(0));
        assert_ne!(a, b);
    }

    #[test]
    fn join_creates_unknown_groups() {
        let r = GroupRegistry::new();
        let g = ThreadGroupId::new(NodeId(3), 9);
        assert!(r.join(g, t(1)));
        assert!(r.is_member(g, t(1)));
    }

    #[test]
    fn remove_group_clears_membership() {
        let r = GroupRegistry::new();
        let g = r.create(NodeId(0));
        r.join(g, t(1));
        r.remove_group(g);
        assert_eq!(r.member_count(g), 0);
        assert!(!r.is_member(g, t(1)));
    }
}
