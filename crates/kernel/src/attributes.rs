//! Thread attributes — the defining feature of the DO/CT passive-object
//! paradigm (paper §3.1 "Thread Contexts").
//!
//! "Thread attributes contain information such as the connections to the
//! I/O channel that the thread is using, creator of the thread,
//! consistency labels for the thread, etc. Event information is a natural
//! addition to the attributes." Attributes travel with the logical thread
//! across every object and machine boundary it visits, and are inherited
//! by threads it spawns (§6.3).
//!
//! The kernel does not know what the event facility stores here; it
//! provides an extension bag ([`Extension`]) that higher layers (the
//! `doct-events` crate) populate — e.g. with the per-thread handler
//! registry and per-thread-memory procedures.

use crate::{ThreadGroupId, ThreadId, Value};
use doct_net::NodeId;
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A typed extension slotted into [`ThreadAttributes`].
///
/// `clone_ext` is called when attributes are *inherited* by a spawned
/// thread, letting the owner decide deep-vs-shallow copy semantics (the
/// event facility deep-copies its handler registry so a child's
/// `attach_handler` does not affect the parent).
pub trait Extension: Any + Send + Sync {
    /// Clone for inheritance by a spawned thread.
    fn clone_ext(&self) -> Arc<dyn Extension>;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// A periodic timer the thread asked for (§6.2): recreated wherever the
/// thread goes, so TIMER events chase it across nodes.
#[derive(Debug, Clone)]
pub struct TimerSpec {
    /// Firing period.
    pub period: Duration,
    /// Payload delivered with each TIMER event.
    pub payload: Value,
    /// Registration id (for cancellation).
    pub id: u64,
}

/// The attribute record that travels with a logical thread.
pub struct ThreadAttributes {
    /// The thread's identity (immutable).
    pub thread: ThreadId,
    /// Node that created the thread.
    pub creator: NodeId,
    /// Thread group membership, if any (§5.3).
    pub group: Option<ThreadGroupId>,
    /// Simulated I/O channel (e.g. the controlling terminal's name); output
    /// from any object the thread visits goes here (§3.1's `foo`/`bar`
    /// example).
    pub io_channel: Option<String>,
    /// Consistency label ([Chen 89] in the paper).
    pub consistency_label: Option<String>,
    /// Periodic timers registered for this thread.
    pub timers: Vec<TimerSpec>,
    /// Small per-thread key/value memory (the serializable slice of the
    /// paper's per-thread memory).
    pub values: BTreeMap<String, Value>,
    /// Typed extension bag for higher layers (event registries, etc.).
    extensions: BTreeMap<&'static str, Arc<dyn Extension>>,
}

impl fmt::Debug for ThreadAttributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadAttributes")
            .field("thread", &self.thread)
            .field("creator", &self.creator)
            .field("group", &self.group)
            .field("io_channel", &self.io_channel)
            .field("timers", &self.timers.len())
            .field("extensions", &self.extensions.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ThreadAttributes {
    /// Fresh attributes for a newly created thread.
    pub fn new(thread: ThreadId, creator: NodeId) -> Self {
        ThreadAttributes {
            thread,
            creator,
            group: None,
            io_channel: None,
            consistency_label: None,
            timers: Vec::new(),
            values: BTreeMap::new(),
            extensions: BTreeMap::new(),
        }
    }

    /// Install or replace a typed extension under `key`.
    pub fn set_extension(&mut self, key: &'static str, ext: Arc<dyn Extension>) {
        self.extensions.insert(key, ext);
    }

    /// Fetch the extension stored under `key`, downcast to `T`.
    pub fn extension<T: Extension>(&self, key: &str) -> Option<Arc<T>> {
        let ext = self.extensions.get(key)?;
        // Arc<dyn Extension> -> Arc<T> via double indirection through Any.
        if ext.as_any().is::<T>() {
            let raw = Arc::clone(ext);
            // Safety-free downcast: re-wrap through Any using the blanket
            // Arc::downcast on dyn Any + Send + Sync.
            let any: Arc<dyn Any + Send + Sync> = raw.into_any_arc();
            any.downcast::<T>().ok()
        } else {
            None
        }
    }

    /// Clone these attributes for inheritance by a spawned thread: the
    /// child gets the parent's group, I/O channel, values, timers, and a
    /// `clone_ext` copy of every extension — "Any subsequent thread
    /// spawned from the root thread inherits the thread attributes
    /// (including the event registry and the handler information)" (§6.3).
    pub fn inherit_for(&self, child: ThreadId, creator: NodeId) -> ThreadAttributes {
        ThreadAttributes {
            thread: child,
            creator,
            group: self.group,
            io_channel: self.io_channel.clone(),
            consistency_label: self.consistency_label.clone(),
            timers: self.timers.clone(),
            values: self.values.clone(),
            extensions: self
                .extensions
                .iter()
                .map(|(k, v)| (*k, v.clone_ext()))
                .collect(),
        }
    }
}

/// Same-thread shipping (invocation crossing a node): extensions move by
/// shared reference — it is still the *same* logical thread, so mutation
/// through interior mutability stays visible when the thread returns.
impl Clone for ThreadAttributes {
    fn clone(&self) -> Self {
        ThreadAttributes {
            thread: self.thread,
            creator: self.creator,
            group: self.group,
            io_channel: self.io_channel.clone(),
            consistency_label: self.consistency_label.clone(),
            timers: self.timers.clone(),
            values: self.values.clone(),
            extensions: self.extensions.clone(),
        }
    }
}

/// Helper trait to turn `Arc<dyn Extension>` into `Arc<dyn Any + Send +
/// Sync>` (stable Rust lacks trait upcasting on older editions; this keeps
/// the conversion explicit).
trait IntoAnyArc {
    fn into_any_arc(self: Arc<Self>) -> Arc<dyn Any + Send + Sync>;
}

impl<T: Extension> IntoAnyArc for T {
    fn into_any_arc(self: Arc<Self>) -> Arc<dyn Any + Send + Sync> {
        self
    }
}

impl IntoAnyArc for dyn Extension {
    fn into_any_arc(self: Arc<Self>) -> Arc<dyn Any + Send + Sync> {
        // dyn Extension: Any + Send + Sync by supertrait, so upcast
        // coercion applies on modern rustc.
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[derive(Debug)]
    struct Counter {
        hits: AtomicU32,
        generation: u32,
    }

    impl Extension for Counter {
        fn clone_ext(&self) -> Arc<dyn Extension> {
            Arc::new(Counter {
                hits: AtomicU32::new(self.hits.load(Ordering::Relaxed)),
                generation: self.generation + 1,
            })
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn attrs() -> ThreadAttributes {
        ThreadAttributes::new(ThreadId::new(NodeId(0), 1), NodeId(0))
    }

    #[test]
    fn extension_round_trip() {
        let mut a = attrs();
        a.set_extension(
            "counter",
            Arc::new(Counter {
                hits: AtomicU32::new(3),
                generation: 0,
            }),
        );
        let c: Arc<Counter> = a.extension("counter").unwrap();
        assert_eq!(c.hits.load(Ordering::Relaxed), 3);
        assert!(a.extension::<Counter>("missing").is_none());
    }

    #[test]
    fn same_thread_clone_shares_extensions() {
        let mut a = attrs();
        a.set_extension(
            "counter",
            Arc::new(Counter {
                hits: AtomicU32::new(0),
                generation: 0,
            }),
        );
        let b = a.clone();
        let ca: Arc<Counter> = a.extension("counter").unwrap();
        ca.hits.fetch_add(1, Ordering::Relaxed);
        let cb: Arc<Counter> = b.extension("counter").unwrap();
        assert_eq!(
            cb.hits.load(Ordering::Relaxed),
            1,
            "same logical thread sees mutations across hops"
        );
    }

    #[test]
    fn inheritance_deep_copies_extensions() {
        let mut a = attrs();
        a.group = Some(ThreadGroupId::new(NodeId(0), 9));
        a.io_channel = Some("tty0".into());
        a.set_extension(
            "counter",
            Arc::new(Counter {
                hits: AtomicU32::new(5),
                generation: 0,
            }),
        );
        let child = a.inherit_for(ThreadId::new(NodeId(1), 7), NodeId(1));
        assert_eq!(child.thread, ThreadId::new(NodeId(1), 7));
        assert_eq!(child.group, a.group, "group inherited");
        assert_eq!(child.io_channel, a.io_channel, "I/O channel inherited");
        let cc: Arc<Counter> = child.extension("counter").unwrap();
        assert_eq!(cc.generation, 1, "clone_ext ran");
        cc.hits.fetch_add(10, Ordering::Relaxed);
        let ca: Arc<Counter> = a.extension("counter").unwrap();
        assert_eq!(
            ca.hits.load(Ordering::Relaxed),
            5,
            "child mutations invisible to parent"
        );
    }

    #[test]
    fn debug_lists_extension_keys() {
        let mut a = attrs();
        a.set_extension(
            "counter",
            Arc::new(Counter {
                hits: AtomicU32::new(0),
                generation: 0,
            }),
        );
        let text = format!("{a:?}");
        assert!(text.contains("counter"), "{text}");
    }
}
