//! Identities of the DO/CT world: objects, logical threads, thread groups.

use doct_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a passive, persistent object.
///
/// Encodes the creating node in the high bits so object creation needs no
/// global coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Compose from creating node and a per-node sequence number.
    pub fn new(creator: NodeId, seq: u32) -> Self {
        ObjectId(((creator.0 as u64) << 32) | seq as u64)
    }

    /// The node on which the object was created (its home).
    pub fn creator(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}.{}", self.creator().0, self.0 & 0xffff_ffff)
    }
}

/// Identity of a logical thread.
///
/// The paper assumes "given the unique name of a thread, it is possible to
/// find the root node" (§7.1) — the root node is encoded in the id, which
/// is what makes the path-trace locator possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId {
    /// Node on which the thread was created.
    pub root: NodeId,
    /// Per-root-node sequence number.
    pub seq: u32,
}

impl ThreadId {
    /// Compose from root node and sequence.
    pub fn new(root: NodeId, seq: u32) -> Self {
        ThreadId { root, seq }
    }

    /// The per-thread multicast group used by the multicast locator.
    pub fn multicast_group(self) -> doct_net::MulticastGroupId {
        doct_net::MulticastGroupId(((self.root.0 as u64) << 32) | self.seq as u64)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.root.0, self.seq)
    }
}

/// Identity of a thread group (paper §5.3, after V-kernel process groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadGroupId(pub u64);

impl ThreadGroupId {
    /// Compose from creating node and a per-node sequence number.
    pub fn new(creator: NodeId, seq: u32) -> Self {
        ThreadGroupId(((creator.0 as u64) << 32) | seq as u64)
    }
}

impl fmt::Display for ThreadGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_encodes_creator() {
        let id = ObjectId::new(NodeId(3), 17);
        assert_eq!(id.creator(), NodeId(3));
        assert_eq!(id.to_string(), "obj3.17");
    }

    #[test]
    fn thread_id_carries_root() {
        let t = ThreadId::new(NodeId(2), 5);
        assert_eq!(t.root, NodeId(2));
        assert_eq!(t.to_string(), "t2.5");
    }

    #[test]
    fn distinct_threads_have_distinct_multicast_groups() {
        let a = ThreadId::new(NodeId(0), 1).multicast_group();
        let b = ThreadId::new(NodeId(0), 2).multicast_group();
        let c = ThreadId::new(NodeId(1), 1).multicast_group();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn group_id_display() {
        assert_eq!(ThreadGroupId::new(NodeId(0), 4).to_string(), "grp4");
    }
}
