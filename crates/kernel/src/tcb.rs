//! Thread control blocks: the per-node breadcrumbs that make the
//! path-trace thread locator possible (paper §7.1: "Starting with the
//! root node, one can traverse the path of the thread, using information
//! in the system's thread-control blocks").

use crate::ThreadId;
use doct_net::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// One visit of a logical thread to a node, at a given invocation depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Invocation depth at which the thread arrived here.
    pub depth: u32,
    /// Node the thread came from (`None` at the root).
    pub came_from: Option<NodeId>,
    /// Node a deeper invocation went to, if the thread currently left from
    /// this hop (`None` means the thread's tip is here).
    pub went_to: Option<NodeId>,
}

/// Per-node table of thread breadcrumbs.
///
/// A thread that revisits a node at a deeper invocation level (A@X → B@Y →
/// C@X) has several [`Hop`]s here; the locator always follows the deepest
/// one.
#[derive(Debug, Default)]
pub struct TcbTable {
    hops: Mutex<HashMap<ThreadId, Vec<Hop>>>,
}

/// Where the locator should go next from this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trail {
    /// The thread's tip is active on this node.
    TipHere,
    /// The thread continued to this node.
    Forward(NodeId),
    /// This node has no record of the thread.
    Unknown,
}

impl TcbTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the thread arriving at this node at `depth`.
    pub fn arrive(&self, thread: ThreadId, depth: u32, came_from: Option<NodeId>) {
        self.hops.lock().entry(thread).or_default().push(Hop {
            depth,
            came_from,
            went_to: None,
        });
    }

    /// Record the thread's deepest local hop sending an invocation to
    /// `next` (the tip leaves this node).
    pub fn depart(&self, thread: ThreadId, next: NodeId) {
        let mut hops = self.hops.lock();
        if let Some(h) = hops.get_mut(&thread).and_then(|v| v.last_mut()) {
            h.went_to = Some(next);
        }
    }

    /// Record the invocation sent from here returning (the tip is back).
    pub fn returned(&self, thread: ThreadId) {
        let mut hops = self.hops.lock();
        if let Some(h) = hops.get_mut(&thread).and_then(|v| v.last_mut()) {
            h.went_to = None;
        }
    }

    /// Record the thread's deepest hop leaving this node for good (its
    /// local invocation finished). Returns `true` if no hops remain.
    pub fn leave(&self, thread: ThreadId) -> bool {
        let mut hops = self.hops.lock();
        let empty = if let Some(v) = hops.get_mut(&thread) {
            v.pop();
            v.is_empty()
        } else {
            true
        };
        if empty {
            hops.remove(&thread);
        }
        empty
    }

    /// Where is the thread, as far as this node knows?
    pub fn trail(&self, thread: ThreadId) -> Trail {
        let hops = self.hops.lock();
        match hops.get(&thread).and_then(|v| v.last()) {
            None => Trail::Unknown,
            Some(h) => match h.went_to {
                None => Trail::TipHere,
                Some(n) => Trail::Forward(n),
            },
        }
    }

    /// Number of threads with breadcrumbs on this node.
    pub fn len(&self) -> usize {
        self.hops.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> ThreadId {
        ThreadId::new(NodeId(0), 1)
    }

    #[test]
    fn tip_tracking_through_a_remote_call() {
        let x = TcbTable::new();
        x.arrive(t(), 0, None);
        assert_eq!(x.trail(t()), Trail::TipHere);
        x.depart(t(), NodeId(1));
        assert_eq!(x.trail(t()), Trail::Forward(NodeId(1)));
        x.returned(t());
        assert_eq!(x.trail(t()), Trail::TipHere);
        assert!(x.leave(t()));
        assert_eq!(x.trail(t()), Trail::Unknown);
    }

    #[test]
    fn revisit_tracks_the_deepest_hop() {
        // Thread root at X (depth 0), goes to Y, comes back to X at depth 2.
        let x = TcbTable::new();
        x.arrive(t(), 0, None);
        x.depart(t(), NodeId(1));
        x.arrive(t(), 2, Some(NodeId(1)));
        // Deepest hop wins: tip is here even though depth 0 points away.
        assert_eq!(x.trail(t()), Trail::TipHere);
        // Depth-2 invocation finishes; trail follows depth 0 again.
        assert!(!x.leave(t()));
        assert_eq!(x.trail(t()), Trail::Forward(NodeId(1)));
        x.returned(t());
        assert!(x.leave(t()));
        assert!(x.is_empty());
    }

    #[test]
    fn unknown_thread_has_no_trail() {
        let x = TcbTable::new();
        assert_eq!(x.trail(t()), Trail::Unknown);
        assert!(x.leave(t()), "leaving an unknown thread is a no-op");
    }

    #[test]
    fn depart_targets_deepest_hop_only() {
        let x = TcbTable::new();
        x.arrive(t(), 0, None);
        x.depart(t(), NodeId(1));
        x.arrive(t(), 2, Some(NodeId(1)));
        x.depart(t(), NodeId(3));
        assert_eq!(x.trail(t()), Trail::Forward(NodeId(3)));
        x.returned(t());
        assert_eq!(x.trail(t()), Trail::TipHere);
    }
}
