#![warn(missing_docs)]
//! # doct-dsm — distributed shared memory substrate
//!
//! The DO/CT environment executes object invocations over distributed
//! shared memory (paper §2). This crate provides that substrate: a
//! page-based, sequentially consistent DSM in the style of Li & Hudak's
//! IVY, with a per-segment manager node, a single-writer/multiple-reader
//! ownership protocol, and — crucial for the paper's §6.4 — *pageable user
//! segments* whose faults are resolved by a user-level fault handler
//! instead of the kernel protocol (the "external pager").
//!
//! Pieces:
//!
//! * [`SegmentId`], [`PageId`], [`SegmentInfo`] — naming and geometry.
//! * [`DsmMessage`] — the coherence protocol wire format.
//! * [`DsmNode`] — the per-node engine: segment creation/attach, `read`/
//!   `write` with transparent fault handling, and the non-blocking
//!   [`DsmNode::handle_message`] the host kernel drives from its node loop.
//! * [`FaultHandler`]/[`FaultInfo`]/[`FaultOutcome`] — the hook through
//!   which faults on pageable segments are surfaced (the event facility
//!   turns these into `VM_FAULT` events).
//! * [`DsmTransport`] — how protocol messages leave the node; the kernel
//!   wraps them into its own message enum, tests use
//!   [`loopback::LoopbackCluster`].
//!
//! Every protocol message is tagged [`doct_net::MessageClass::Dsm`] by the
//! host so the RPC-vs-DSM experiment (E8) can attribute traffic.

mod fault;
mod message;
mod node;
mod state;
mod types;

pub mod loopback;

pub use fault::{FaultHandler, FaultInfo, FaultKind, FaultOutcome, ZeroFillHandler};
pub use message::DsmMessage;
pub use node::{DsmError, DsmNode, DsmNodeStats, DsmTransport};
pub use state::AccessLevel;
pub use types::{Backing, DsmConfig, PageId, SegmentId, SegmentInfo};
