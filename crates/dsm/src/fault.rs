//! User-level fault handling hooks (§6.4 of the paper).

use crate::PageId;
use doct_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a fault was caused by a read or a write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Read access to an invalid page.
    Read,
    /// Write access to an invalid or read-only page.
    Write,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Read => "read",
            FaultKind::Write => "write",
        })
    }
}

/// Description of a fault on a pageable (user-backed) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInfo {
    /// The faulted page.
    pub page: PageId,
    /// Read or write access.
    pub kind: FaultKind,
    /// Node on which the fault occurred.
    pub node: NodeId,
    /// Bytes actually used in this page (tail pages may be short).
    pub page_len: usize,
}

/// How a [`FaultHandler`] resolved a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Handler supplies the page contents directly; the DSM installs them
    /// and the faulting access proceeds.
    Supply(Vec<u8>),
    /// Handler could not resolve the fault; the faulting access fails with
    /// [`crate::DsmError::UnresolvedFault`].
    Fail,
}

/// User-level pager hook.
///
/// Registered per node via [`crate::DsmNode::set_fault_handler`]. Called
/// *on the faulting thread*, which is exactly the paper's semantics: "When
/// any thread faults at an address, the thread is suspended and the handler
/// attached to the server is notified" — the handler may do arbitrary work
/// (including raising events and waiting on remote parties) before
/// returning the page.
pub trait FaultHandler: Send + Sync {
    /// Resolve one fault. See [`FaultOutcome`].
    fn handle_fault(&self, fault: &FaultInfo) -> FaultOutcome;
}

/// A [`FaultHandler`] that zero-fills every page; useful as a default
/// backing and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroFillHandler;

impl FaultHandler for ZeroFillHandler {
    fn handle_fault(&self, fault: &FaultInfo) -> FaultOutcome {
        FaultOutcome::Supply(vec![0; fault.page_len])
    }
}

impl<F> FaultHandler for F
where
    F: Fn(&FaultInfo) -> FaultOutcome + Send + Sync,
{
    fn handle_fault(&self, fault: &FaultInfo) -> FaultOutcome {
        self(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;

    fn fault() -> FaultInfo {
        FaultInfo {
            page: PageId {
                segment: SegmentId::new(NodeId(0), 1),
                index: 2,
            },
            kind: FaultKind::Read,
            node: NodeId(1),
            page_len: 128,
        }
    }

    #[test]
    fn zero_fill_supplies_exactly_page_len() {
        match ZeroFillHandler.handle_fault(&fault()) {
            FaultOutcome::Supply(data) => assert_eq!(data, vec![0; 128]),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn closures_are_handlers() {
        let h = |f: &FaultInfo| FaultOutcome::Supply(vec![f.page.index as u8; f.page_len]);
        match h.handle_fault(&fault()) {
            FaultOutcome::Supply(data) => assert_eq!(data[0], 2),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Read.to_string(), "read");
        assert_eq!(FaultKind::Write.to_string(), "write");
    }
}
