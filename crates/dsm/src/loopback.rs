//! A self-contained multi-node DSM cluster over [`doct_net`], used by this
//! crate's tests and by the DSM-only benchmarks. The full system wires
//! [`crate::DsmNode`] into the kernel's node loop instead.

use crate::{DsmConfig, DsmMessage, DsmNode, DsmTransport};
use doct_net::{LatencyModel, MessageClass, Network, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct NetTransport {
    net: Arc<Network<DsmMessage>>,
}

impl DsmTransport for NetTransport {
    fn send(&self, from: NodeId, to: NodeId, msg: DsmMessage) {
        // Dropped messages (cut links) surface as protocol timeouts.
        let _ = self.net.send(from, to, msg, MessageClass::Dsm);
    }
}

/// `n` [`DsmNode`]s, each with a router thread pumping its mailbox.
pub struct LoopbackCluster {
    nodes: Vec<Arc<DsmNode>>,
    net: Arc<Network<DsmMessage>>,
    shutdown: Arc<AtomicBool>,
    routers: Vec<JoinHandle<()>>,
}

impl LoopbackCluster {
    /// Build a cluster of `n` nodes with zero latency.
    pub fn new(n: usize) -> Self {
        Self::with_latency(n, LatencyModel::Zero)
    }

    /// Build a cluster of `n` nodes with the given latency model.
    pub fn with_latency(n: usize, latency: LatencyModel) -> Self {
        Self::with_config(n, latency, DsmConfig::default())
    }

    /// Build a cluster with explicit per-node DSM configuration.
    pub fn with_config(n: usize, latency: LatencyModel, config: DsmConfig) -> Self {
        let net = Arc::new(Network::new(n, latency));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut nodes = Vec::with_capacity(n);
        let mut routers = Vec::with_capacity(n);
        for id in 0..n as u32 {
            let node = Arc::new(DsmNode::new(
                NodeId(id),
                config,
                Arc::new(NetTransport {
                    net: Arc::clone(&net),
                }),
            ));
            nodes.push(Arc::clone(&node));
            let rx = net.take_mailbox(NodeId(id)).expect("fresh mailbox");
            let stop = Arc::clone(&shutdown);
            routers.push(
                std::thread::Builder::new()
                    .name(format!("dsm-router-{id}"))
                    .spawn(move || loop {
                        match rx.recv_timeout(Duration::from_millis(50)) {
                            Ok(env) => node.handle_message(env.payload),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn router"),
            );
        }
        LoopbackCluster {
            nodes,
            net,
            shutdown,
            routers,
        }
    }

    /// The DSM engine of node `i`.
    pub fn node(&self, i: usize) -> &Arc<DsmNode> {
        &self.nodes[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (it never is; satisfies clippy's
    /// `len`-without-`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The underlying fabric (stats, partitions).
    pub fn network(&self) -> &Network<DsmMessage> {
        &self.net
    }

    /// Create a kernel-backed segment at node `creator` and attach it on
    /// every other node.
    pub fn shared_segment(&self, creator: usize, size: usize) -> crate::SegmentInfo {
        let info = self.nodes[creator].create_segment(size, crate::Backing::Kernel);
        for (i, node) in self.nodes.iter().enumerate() {
            if i != creator {
                node.attach(info);
            }
        }
        info
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for r in self.routers.drain(..) {
            let _ = r.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessLevel, DsmError, PageId};

    /// The directory commit (`FaultComplete`) trails the faulting access,
    /// so directory assertions poll briefly for convergence.
    fn eventually(mut cond: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "condition not reached within 2s"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn remote_read_pulls_a_copy() {
        let c = LoopbackCluster::new(2);
        let info = c.shared_segment(0, 1024);
        c.node(0).write(info.id, 0, b"shared!").unwrap();
        assert_eq!(c.node(1).read(info.id, 0, 7).unwrap(), b"shared!");
        let page = PageId {
            segment: info.id,
            index: 0,
        };
        assert_eq!(c.node(1).access_level(page), AccessLevel::Read);
        // Owner downgraded to a read copy.
        assert_eq!(c.node(0).access_level(page), AccessLevel::Read);
        eventually(|| c.node(0).directory_entry(page).unwrap() == (NodeId(0), vec![NodeId(1)]));
    }

    #[test]
    fn remote_write_takes_ownership_and_invalidates() {
        let c = LoopbackCluster::new(3);
        let info = c.shared_segment(0, 1024);
        // Node 1 and 2 take read copies.
        assert_eq!(c.node(1).read(info.id, 0, 1).unwrap(), vec![0]);
        assert_eq!(c.node(2).read(info.id, 0, 1).unwrap(), vec![0]);
        // Node 2 writes: everyone else must lose their copy.
        c.node(2).write(info.id, 0, &[42]).unwrap();
        let page = PageId {
            segment: info.id,
            index: 0,
        };
        assert_eq!(c.node(2).access_level(page), AccessLevel::Owned);
        assert_eq!(c.node(0).access_level(page), AccessLevel::Invalid);
        assert_eq!(c.node(1).access_level(page), AccessLevel::Invalid);
        eventually(|| c.node(0).directory_entry(page).unwrap() == (NodeId(2), vec![]));
        // And the new value is visible everywhere.
        assert_eq!(c.node(0).read(info.id, 0, 1).unwrap(), vec![42]);
        assert_eq!(c.node(1).read(info.id, 0, 1).unwrap(), vec![42]);
    }

    #[test]
    fn write_upgrade_from_read_copy() {
        let c = LoopbackCluster::new(2);
        let info = c.shared_segment(0, 1024);
        assert_eq!(c.node(1).read(info.id, 0, 1).unwrap(), vec![0]);
        // Node 1 upgrades its read copy to ownership.
        c.node(1).write(info.id, 0, &[7]).unwrap();
        assert_eq!(c.node(0).read(info.id, 0, 1).unwrap(), vec![7]);
    }

    #[test]
    fn owner_write_upgrade_after_downgrade() {
        let c = LoopbackCluster::new(2);
        let info = c.shared_segment(0, 1024);
        // Node 1 reads, downgrading node 0 to a read copy.
        c.node(1).read(info.id, 0, 1).unwrap();
        // Node 0 (still the directory owner) writes again: must invalidate
        // node 1's copy even though node 0 needs no data transfer.
        c.node(0).write(info.id, 0, &[9]).unwrap();
        let page = PageId {
            segment: info.id,
            index: 0,
        };
        assert_eq!(c.node(1).access_level(page), AccessLevel::Invalid);
        assert_eq!(c.node(1).read(info.id, 0, 1).unwrap(), vec![9]);
    }

    #[test]
    fn ping_pong_many_rounds_stays_coherent() {
        let c = LoopbackCluster::new(2);
        let info = c.shared_segment(0, 64);
        for round in 0..50u64 {
            let writer = (round % 2) as usize;
            c.node(writer).write_u64(info.id, 0, round).unwrap();
            let reader = 1 - writer;
            assert_eq!(c.node(reader).read_u64(info.id, 0).unwrap(), round);
        }
        assert!(c.node(0).stats().write_faults() > 0);
        assert!(c.node(1).stats().write_faults() > 0);
    }

    #[test]
    fn concurrent_writers_to_distinct_pages_do_not_interfere() {
        let c = Arc::new(LoopbackCluster::new(4));
        let info = c.shared_segment(0, 4 * 1024);
        let mut handles = Vec::new();
        for i in 0..4usize {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let offset = i * 1024;
                for v in 0..20u64 {
                    c.node(i)
                        .write_u64(info.id, offset, v * 10 + i as u64)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4usize {
            let got = c.node(0).read_u64(info.id, i * 1024).unwrap();
            assert_eq!(got, 19 * 10 + i as u64);
        }
    }

    #[test]
    fn contended_single_page_serializes_writes() {
        // All nodes hammer the same page; SWMR must serialize, and the
        // final read must be one of the written values (no torn data).
        let c = Arc::new(LoopbackCluster::new(3));
        let info = c.shared_segment(0, 64);
        let mut handles = Vec::new();
        for i in 0..3usize {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for v in 0..10u64 {
                    c.node(i)
                        .write_u64(info.id, 0, (i as u64) << 32 | v)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let last = c.node(0).read_u64(info.id, 0).unwrap();
        let node = last >> 32;
        let v = last & 0xffff_ffff;
        assert!(node < 3 && v == 9, "last write wins per node: {last:#x}");
    }

    #[test]
    fn partition_causes_fault_timeout() {
        let c = LoopbackCluster::with_config(
            2,
            LatencyModel::Zero,
            DsmConfig {
                fault_timeout: Duration::from_millis(200),
                ..DsmConfig::default()
            },
        );
        let info = c.shared_segment(0, 64);
        c.network().isolate(&[NodeId(1)]).unwrap();
        let err = c.node(1).read(info.id, 0, 1).unwrap_err();
        assert!(matches!(err, DsmError::Timeout(_)), "{err}");
    }

    #[test]
    fn dsm_traffic_is_classified() {
        let c = LoopbackCluster::new(2);
        let info = c.shared_segment(0, 64);
        c.node(1).read(info.id, 0, 1).unwrap();
        assert!(c.network().stats().sent(MessageClass::Dsm) >= 2);
        assert_eq!(c.network().stats().sent(MessageClass::Invocation), 0);
    }
}
