//! Naming, geometry, and configuration of DSM segments.

use doct_net::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a DSM segment.
///
/// The high 32 bits carry the creating node, the low 32 bits a per-node
/// sequence number, so segments can be created without global coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u64);

impl SegmentId {
    /// Compose a segment id from its creating node and local sequence.
    pub fn new(creator: NodeId, seq: u32) -> Self {
        SegmentId(((creator.0 as u64) << 32) | seq as u64)
    }

    /// The node that created (and manages) this segment.
    pub fn creator(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}.{}", self.creator().0, self.0 & 0xffff_ffff)
    }
}

/// Identity of one page within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// Owning segment.
    pub segment: SegmentId,
    /// Zero-based page index within the segment.
    pub index: u32,
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.segment, self.index)
    }
}

/// Who resolves faults on a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backing {
    /// The kernel coherence protocol: pages live with their current owner,
    /// the manager tracks ownership, faults move pages. Sequentially
    /// consistent (single-writer/multiple-reader).
    Kernel,
    /// A user-level pager (§6.4): faults are surfaced through the node's
    /// [`crate::FaultHandler`]; the handler supplies page contents and the
    /// kernel imposes no cross-node consistency ("bypass the strict
    /// consistency imposed by the underlying sequentially consistent DSM").
    UserPager,
}

/// Everything a node must know to use a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// Segment identity.
    pub id: SegmentId,
    /// Manager node (directory home); equals `id.creator()`.
    pub manager: NodeId,
    /// Total size in bytes.
    pub size: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Fault-resolution policy.
    pub backing: Backing,
}

impl SegmentInfo {
    /// Number of pages in the segment (last page may be partial).
    pub fn page_count(&self) -> u32 {
        (self.size.div_ceil(self.page_size)) as u32
    }

    /// Bytes actually used in page `index` (the tail page may be short).
    pub fn page_len(&self, index: u32) -> usize {
        let start = index as usize * self.page_size;
        self.page_size.min(self.size.saturating_sub(start))
    }

    /// The pages overlapped by `offset..offset + len`.
    pub fn pages_for_range(&self, offset: usize, len: usize) -> std::ops::Range<u32> {
        if len == 0 {
            return 0..0;
        }
        let first = (offset / self.page_size) as u32;
        let last = ((offset + len - 1) / self.page_size) as u32;
        first..last + 1
    }
}

/// Per-node DSM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmConfig {
    /// Page size used for newly created segments, in bytes.
    pub page_size: usize,
    /// How long a faulting access waits for the coherence protocol before
    /// failing with [`crate::DsmError::Timeout`]. Only reached when
    /// messages were lost (cut links, partitions).
    pub fault_timeout: std::time::Duration,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            page_size: 1024,
            fault_timeout: std::time::Duration::from_secs(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_id_encodes_creator() {
        let id = SegmentId::new(NodeId(5), 42);
        assert_eq!(id.creator(), NodeId(5));
        assert_eq!(id.to_string(), "seg5.42");
    }

    #[test]
    fn page_geometry() {
        let info = SegmentInfo {
            id: SegmentId::new(NodeId(0), 1),
            manager: NodeId(0),
            size: 2500,
            page_size: 1024,
            backing: Backing::Kernel,
        };
        assert_eq!(info.page_count(), 3);
        assert_eq!(info.page_len(0), 1024);
        assert_eq!(info.page_len(2), 452);
        assert_eq!(info.pages_for_range(0, 1), 0..1);
        assert_eq!(info.pages_for_range(1023, 2), 0..2);
        assert_eq!(info.pages_for_range(2048, 452), 2..3);
        assert_eq!(info.pages_for_range(100, 0), 0..0);
    }

    #[test]
    fn exact_multiple_has_no_partial_tail() {
        let info = SegmentInfo {
            id: SegmentId::new(NodeId(0), 1),
            manager: NodeId(0),
            size: 2048,
            page_size: 1024,
            backing: Backing::Kernel,
        };
        assert_eq!(info.page_count(), 2);
        assert_eq!(info.page_len(1), 1024);
        assert_eq!(info.page_len(2), 0);
    }
}
