//! The per-node DSM engine.

use crate::state::{AccessLevel, DirEntry, InFlight, LocalPage, NodeState};
use crate::{
    Backing, DsmConfig, DsmMessage, FaultHandler, FaultInfo, FaultKind, FaultOutcome, PageId,
    SegmentId, SegmentInfo,
};
use doct_net::NodeId;
use parking_lot::{Condvar, Mutex, RwLock};
use std::error::Error;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Outbound path for protocol messages. The host kernel implements this by
/// wrapping [`DsmMessage`] into its own node-to-node message type.
pub trait DsmTransport: Send + Sync {
    /// Deliver `msg` to node `to`. Must not block indefinitely.
    fn send(&self, from: NodeId, to: NodeId, msg: DsmMessage);
}

/// Errors surfaced by DSM accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// The segment has not been created or attached on this node.
    UnknownSegment(SegmentId),
    /// The access falls outside the segment.
    OutOfBounds {
        /// Segment accessed.
        segment: SegmentId,
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Segment size.
        size: usize,
    },
    /// A pageable segment faulted but no fault handler is registered.
    NoFaultHandler(PageId),
    /// The fault handler declined to resolve the fault.
    UnresolvedFault(PageId),
    /// The coherence protocol did not answer in time (lost messages,
    /// partitioned cluster).
    Timeout(PageId),
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            DsmError::OutOfBounds {
                segment,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}..{}) out of bounds of {segment} (size {size})",
                offset + len
            ),
            DsmError::NoFaultHandler(p) => write!(f, "fault on {p} with no fault handler"),
            DsmError::UnresolvedFault(p) => write!(f, "fault handler failed to resolve {p}"),
            DsmError::Timeout(p) => write!(f, "coherence protocol timeout on {p}"),
        }
    }
}

impl Error for DsmError {}

/// Monotone per-node fault/traffic counters (E7's instrument).
///
/// Backed by telemetry [`doct_telemetry::Counter`] handles; built with
/// [`DsmNodeStats::bound`] they share storage with the registry's
/// node-qualified `dsm.n<id>.*` series, so coherence activity appears in
/// cluster metric snapshots while these accessors stay per-node.
#[derive(Debug, Default)]
pub struct DsmNodeStats {
    read_faults: doct_telemetry::Counter,
    write_faults: doct_telemetry::Counter,
    user_faults: doct_telemetry::Counter,
    pages_served: doct_telemetry::Counter,
    invalidations: doct_telemetry::Counter,
}

impl DsmNodeStats {
    /// Counters sharing storage with the registry's `dsm.n<id>.*` series.
    pub fn bound(registry: &doct_telemetry::Registry, node: NodeId) -> Self {
        let c = |what: &str| registry.counter(&format!("dsm.n{}.{what}", node.0));
        DsmNodeStats {
            read_faults: c("read_faults"),
            write_faults: c("write_faults"),
            user_faults: c("user_faults"),
            pages_served: c("pages_served"),
            invalidations: c("invalidations"),
        }
    }

    /// Kernel-protocol read faults taken on this node.
    pub fn read_faults(&self) -> u64 {
        self.read_faults.load(Ordering::Relaxed)
    }

    /// Kernel-protocol write faults taken on this node.
    pub fn write_faults(&self) -> u64 {
        self.write_faults.load(Ordering::Relaxed)
    }

    /// Faults resolved by the user-level fault handler.
    pub fn user_faults(&self) -> u64 {
        self.user_faults.load(Ordering::Relaxed)
    }

    /// Pages this node served to other nodes (as owner).
    pub fn pages_served(&self) -> u64 {
        self.pages_served.load(Ordering::Relaxed)
    }

    /// Read copies this node dropped due to invalidations.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// One node's DSM engine.
///
/// Thread-safe: user threads call [`DsmNode::read`]/[`DsmNode::write`]
/// (which may block while a fault is serviced), while the host kernel's
/// receive loop feeds inbound protocol traffic to the **non-blocking**
/// [`DsmNode::handle_message`].
pub struct DsmNode {
    node: NodeId,
    config: DsmConfig,
    transport: Arc<dyn DsmTransport>,
    state: Mutex<NodeState>,
    cond: Condvar,
    fault_handler: RwLock<Option<Arc<dyn FaultHandler>>>,
    stats: DsmNodeStats,
}

impl fmt::Debug for DsmNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmNode")
            .field("node", &self.node)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DsmNode {
    /// Create the engine for `node`, sending protocol traffic through
    /// `transport`.
    pub fn new(node: NodeId, config: DsmConfig, transport: Arc<dyn DsmTransport>) -> Self {
        Self::with_stats(node, config, transport, DsmNodeStats::default())
    }

    /// [`DsmNode::new`] with counters bound to a telemetry registry (see
    /// [`DsmNodeStats::bound`]).
    pub fn with_stats(
        node: NodeId,
        config: DsmConfig,
        transport: Arc<dyn DsmTransport>,
        stats: DsmNodeStats,
    ) -> Self {
        DsmNode {
            node,
            config,
            transport,
            state: Mutex::new(NodeState::default()),
            cond: Condvar::new(),
            fault_handler: RwLock::new(None),
            stats,
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Fault/traffic counters.
    pub fn stats(&self) -> &DsmNodeStats {
        &self.stats
    }

    /// Register the user-level fault handler for pageable segments
    /// (replacing any previous one).
    pub fn set_fault_handler(&self, handler: Arc<dyn FaultHandler>) {
        *self.fault_handler.write() = Some(handler);
    }

    /// Remove the user-level fault handler.
    pub fn clear_fault_handler(&self) {
        *self.fault_handler.write() = None;
    }

    /// Create a segment managed by this node. For kernel-backed segments
    /// this node starts as owner of every (zero-filled) page.
    ///
    /// The caller is responsible for announcing the returned
    /// [`SegmentInfo`] to other nodes (the host kernel broadcasts a
    /// [`DsmMessage::Announce`]).
    pub fn create_segment(&self, size: usize, backing: Backing) -> SegmentInfo {
        let mut st = self.state.lock();
        let seq = st.next_segment_seq;
        st.next_segment_seq += 1;
        let info = SegmentInfo {
            id: SegmentId::new(self.node, seq),
            manager: self.node,
            size,
            page_size: self.config.page_size,
            backing,
        };
        st.segments.insert(info.id, info);
        if backing == Backing::Kernel {
            for index in 0..info.page_count() {
                let page = PageId {
                    segment: info.id,
                    index,
                };
                st.pages
                    .insert(page, LocalPage::owned(vec![0; info.page_len(index)]));
                st.directory.insert(page, DirEntry::new(self.node));
            }
        }
        info
    }

    /// Learn about a segment created elsewhere.
    pub fn attach(&self, info: SegmentInfo) {
        self.state.lock().segments.insert(info.id, info);
    }

    /// Geometry of `segment`, if known on this node.
    pub fn segment_info(&self, segment: SegmentId) -> Option<SegmentInfo> {
        self.state.lock().segments.get(&segment).copied()
    }

    /// Current access level this node holds on `page` (inspection for
    /// tests and invariant checks).
    pub fn access_level(&self, page: PageId) -> AccessLevel {
        self.state
            .lock()
            .pages
            .get(&page)
            .map(|p| p.access)
            .unwrap_or(AccessLevel::Invalid)
    }

    /// Manager-side directory view of `page`: `(owner, copyset)`.
    /// `None` if this node does not manage the page.
    pub fn directory_entry(&self, page: PageId) -> Option<(NodeId, Vec<NodeId>)> {
        self.state
            .lock()
            .directory
            .get(&page)
            .map(|d| (d.owner, d.copyset.iter().copied().collect()))
    }

    fn info_checked(
        &self,
        segment: SegmentId,
        offset: usize,
        len: usize,
    ) -> Result<SegmentInfo, DsmError> {
        let st = self.state.lock();
        let info = st
            .segments
            .get(&segment)
            .copied()
            .ok_or(DsmError::UnknownSegment(segment))?;
        if offset + len > info.size {
            return Err(DsmError::OutOfBounds {
                segment,
                offset,
                len,
                size: info.size,
            });
        }
        Ok(info)
    }

    /// Read `len` bytes at `offset`, faulting pages in as needed.
    ///
    /// # Errors
    ///
    /// [`DsmError::UnknownSegment`], [`DsmError::OutOfBounds`], or a fault
    /// resolution failure.
    pub fn read(&self, segment: SegmentId, offset: usize, len: usize) -> Result<Vec<u8>, DsmError> {
        let info = self.info_checked(segment, offset, len)?;
        let mut out = Vec::with_capacity(len);
        for index in info.pages_for_range(offset, len) {
            let page_start = index as usize * info.page_size;
            let s = offset.max(page_start) - page_start;
            let e = (offset + len).min(page_start + info.page_len(index)) - page_start;
            self.with_page(&info, index, FaultKind::Read, |data| {
                out.extend_from_slice(&data[s..e]);
            })?;
        }
        Ok(out)
    }

    /// Write `data` at `offset`, acquiring page ownership as needed.
    ///
    /// # Errors
    ///
    /// [`DsmError::UnknownSegment`], [`DsmError::OutOfBounds`], or a fault
    /// resolution failure.
    pub fn write(&self, segment: SegmentId, offset: usize, data: &[u8]) -> Result<(), DsmError> {
        let info = self.info_checked(segment, offset, data.len())?;
        let mut cursor = 0usize;
        for index in info.pages_for_range(offset, data.len()) {
            let page_start = index as usize * info.page_size;
            let s = (offset + cursor).max(page_start) - page_start;
            let e = (offset + data.len()).min(page_start + info.page_len(index)) - page_start;
            let chunk = &data[cursor..cursor + (e - s)];
            self.with_page(&info, index, FaultKind::Write, |page| {
                page[s..e].copy_from_slice(chunk);
            })?;
            cursor += e - s;
        }
        Ok(())
    }

    /// Convenience: read a little-endian `u64` at `offset`.
    ///
    /// # Errors
    ///
    /// Same as [`DsmNode::read`].
    pub fn read_u64(&self, segment: SegmentId, offset: usize) -> Result<u64, DsmError> {
        let bytes = self.read(segment, offset, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Convenience: write a little-endian `u64` at `offset`.
    ///
    /// # Errors
    ///
    /// Same as [`DsmNode::write`].
    pub fn write_u64(&self, segment: SegmentId, offset: usize, value: u64) -> Result<(), DsmError> {
        self.write(segment, offset, &value.to_le_bytes())
    }

    /// Run `f` over the page's bytes with at least `kind` access, faulting
    /// as necessary. Access check and the closure run atomically under the
    /// node lock, so no remote invalidation can interleave.
    fn with_page<R>(
        &self,
        info: &SegmentInfo,
        index: u32,
        kind: FaultKind,
        f: impl FnOnce(&mut Vec<u8>) -> R,
    ) -> Result<R, DsmError> {
        let page = PageId {
            segment: info.id,
            index,
        };
        let mut st = self.state.lock();
        loop {
            let lp = st.pages.entry(page).or_insert_with(LocalPage::invalid);
            if lp.access.satisfies(kind) {
                let data = lp.data.as_mut().expect("valid page has data");
                return Ok(f(data));
            }
            if st.inflight.contains_key(&page) {
                // Another local thread is coordinating a fault on this
                // page; wait for it and re-check.
                if self
                    .cond
                    .wait_for(&mut st, self.config.fault_timeout)
                    .timed_out()
                {
                    return Err(DsmError::Timeout(page));
                }
                continue;
            }
            match info.backing {
                Backing::UserPager => {
                    st.inflight.insert(page, InFlight::new(kind));
                    drop(st);
                    let result = self.resolve_user_fault(info, page, kind);
                    st = self.state.lock();
                    st.inflight.remove(&page);
                    match result {
                        Ok(data) => {
                            st.pages.insert(page, LocalPage::owned(data));
                            self.cond.notify_all();
                            continue;
                        }
                        Err(e) => {
                            self.cond.notify_all();
                            return Err(e);
                        }
                    }
                }
                Backing::Kernel => {
                    match kind {
                        FaultKind::Read => self.stats.read_faults.fetch_add(1, Ordering::Relaxed),
                        FaultKind::Write => self.stats.write_faults.fetch_add(1, Ordering::Relaxed),
                    };
                    st.inflight.insert(page, InFlight::new(kind));
                    drop(st);
                    self.dispatch(
                        info.manager,
                        DsmMessage::FaultRequest {
                            page,
                            kind,
                            from: self.node,
                        },
                    );
                    st = self.state.lock();
                    loop {
                        let fl = st.inflight.get(&page).expect("coordinator owns inflight");
                        if fl.is_complete() {
                            break;
                        }
                        if self
                            .cond
                            .wait_for(&mut st, self.config.fault_timeout)
                            .timed_out()
                        {
                            st.inflight.remove(&page);
                            self.cond.notify_all();
                            return Err(DsmError::Timeout(page));
                        }
                    }
                    let fl = st.inflight.remove(&page).expect("checked above");
                    let access = match kind {
                        FaultKind::Read => AccessLevel::Read,
                        FaultKind::Write => AccessLevel::Owned,
                    };
                    st.pages.insert(
                        page,
                        LocalPage {
                            access,
                            data: Some(fl.data.expect("complete transaction has data")),
                        },
                    );
                    drop(st);
                    self.dispatch(
                        info.manager,
                        DsmMessage::FaultComplete {
                            page,
                            kind,
                            from: self.node,
                        },
                    );
                    self.cond.notify_all();
                    st = self.state.lock();
                    continue;
                }
            }
        }
    }

    fn resolve_user_fault(
        &self,
        info: &SegmentInfo,
        page: PageId,
        kind: FaultKind,
    ) -> Result<Vec<u8>, DsmError> {
        let handler = self
            .fault_handler
            .read()
            .clone()
            .ok_or(DsmError::NoFaultHandler(page))?;
        self.stats.user_faults.fetch_add(1, Ordering::Relaxed);
        let fault = FaultInfo {
            page,
            kind,
            node: self.node,
            page_len: info.page_len(page.index),
        };
        match handler.handle_fault(&fault) {
            FaultOutcome::Supply(mut data) => {
                data.resize(fault.page_len, 0);
                Ok(data)
            }
            FaultOutcome::Fail => Err(DsmError::UnresolvedFault(page)),
        }
    }

    /// Send `msg` to `to`; a message to this node is handled inline.
    fn dispatch(&self, to: NodeId, msg: DsmMessage) {
        if to == self.node {
            self.handle_message(msg);
        } else {
            self.transport.send(self.node, to, msg);
        }
    }

    /// Feed one inbound protocol message. **Never blocks**; safe to call
    /// from the host kernel's single receive loop.
    pub fn handle_message(&self, msg: DsmMessage) {
        match msg {
            DsmMessage::Announce { info } => self.attach(info),
            DsmMessage::FaultRequest { page, kind, from } => {
                self.on_fault_request(page, kind, from)
            }
            DsmMessage::Forward {
                page,
                requester,
                kind,
            } => self.on_forward(page, requester, kind),
            DsmMessage::Invalidate { page, ack_to } => self.on_invalidate(page, ack_to),
            DsmMessage::InvalidateAck { page } => self.on_ack(page),
            DsmMessage::WriteGrant {
                page,
                expected_acks,
            } => self.on_grant(page, expected_acks),
            DsmMessage::PageData { page, data, .. } => self.on_page_data(page, data),
            DsmMessage::FaultComplete { page, kind, from } => self.on_complete(page, kind, from),
        }
    }

    /// Manager role: serialize and start a fault transaction.
    fn on_fault_request(&self, page: PageId, kind: FaultKind, from: NodeId) {
        let mut actions: Vec<(NodeId, DsmMessage)> = Vec::new();
        {
            let mut st = self.state.lock();
            let node = self.node;
            let dir = st
                .directory
                .entry(page)
                .or_insert_with(|| DirEntry::new(node));
            if dir.busy {
                dir.queue.push_back((from, kind));
                return;
            }
            dir.busy = true;
            let owner = dir.owner;
            match kind {
                FaultKind::Read => {
                    actions.push((
                        owner,
                        DsmMessage::Forward {
                            page,
                            requester: from,
                            kind,
                        },
                    ));
                }
                FaultKind::Write => {
                    let holders: Vec<NodeId> =
                        dir.copyset.iter().copied().filter(|&n| n != from).collect();
                    for &h in &holders {
                        actions.push((h, DsmMessage::Invalidate { page, ack_to: from }));
                    }
                    actions.push((
                        from,
                        DsmMessage::WriteGrant {
                            page,
                            expected_acks: holders.len() as u32,
                        },
                    ));
                    actions.push((
                        owner,
                        DsmMessage::Forward {
                            page,
                            requester: from,
                            kind,
                        },
                    ));
                }
            }
        }
        for (to, msg) in actions {
            self.dispatch(to, msg);
        }
    }

    /// Owner role: serve page data to a requester.
    fn on_forward(&self, page: PageId, requester: NodeId, kind: FaultKind) {
        let mut inline: Option<DsmMessage> = None;
        let mut action: Option<(NodeId, DsmMessage)> = None;
        {
            let mut st = self.state.lock();
            let lp = st
                .pages
                .get_mut(&page)
                .expect("directory names this node owner, so it must hold the page");
            if requester == self.node {
                // Ownership upgrade at the (former) owner: the data is
                // already local; synthesize the PageData step.
                let data = lp.data.clone().expect("owner holds data");
                inline = Some(DsmMessage::PageData {
                    page,
                    data,
                    readonly: kind == FaultKind::Read,
                });
            } else {
                self.stats.pages_served.fetch_add(1, Ordering::Relaxed);
                match kind {
                    FaultKind::Read => {
                        lp.access = AccessLevel::Read;
                        let data = lp.data.clone().expect("owner holds data");
                        action = Some((
                            requester,
                            DsmMessage::PageData {
                                page,
                                data,
                                readonly: true,
                            },
                        ));
                    }
                    FaultKind::Write => {
                        let data = lp.data.take().expect("owner holds data");
                        lp.access = AccessLevel::Invalid;
                        action = Some((
                            requester,
                            DsmMessage::PageData {
                                page,
                                data,
                                readonly: false,
                            },
                        ));
                    }
                }
            }
        }
        if let Some(msg) = inline {
            self.handle_message(msg);
        }
        if let Some((to, msg)) = action {
            self.dispatch(to, msg);
        }
    }

    /// Copy-holder role: drop the read copy and acknowledge to the writer.
    fn on_invalidate(&self, page: PageId, ack_to: NodeId) {
        {
            let mut st = self.state.lock();
            if let Some(lp) = st.pages.get_mut(&page) {
                lp.access = AccessLevel::Invalid;
                lp.data = None;
            }
        }
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        self.dispatch(ack_to, DsmMessage::InvalidateAck { page });
    }

    fn on_ack(&self, page: PageId) {
        let mut st = self.state.lock();
        if let Some(fl) = st.inflight.get_mut(&page) {
            fl.acks += 1;
        }
        self.cond.notify_all();
    }

    fn on_grant(&self, page: PageId, expected_acks: u32) {
        let mut st = self.state.lock();
        if let Some(fl) = st.inflight.get_mut(&page) {
            fl.expected_acks = Some(expected_acks);
        }
        self.cond.notify_all();
    }

    fn on_page_data(&self, page: PageId, data: Vec<u8>) {
        let mut st = self.state.lock();
        if let Some(fl) = st.inflight.get_mut(&page) {
            fl.data = Some(data);
        }
        self.cond.notify_all();
    }

    /// Manager role: commit the directory update and start the next queued
    /// transaction, if any.
    fn on_complete(&self, page: PageId, kind: FaultKind, from: NodeId) {
        let next;
        {
            let mut st = self.state.lock();
            let dir = st
                .directory
                .get_mut(&page)
                .expect("completion for a page this node manages");
            match kind {
                FaultKind::Read => {
                    if from != dir.owner {
                        dir.copyset.insert(from);
                    }
                }
                FaultKind::Write => {
                    dir.owner = from;
                    dir.copyset.clear();
                }
            }
            dir.busy = false;
            next = dir.queue.pop_front();
        }
        if let Some((node, kind)) = next {
            self.on_fault_request(page, kind, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Transport that drops everything: good enough for single-node tests
    /// where all traffic is inline.
    struct NullTransport;
    impl DsmTransport for NullTransport {
        fn send(&self, _from: NodeId, _to: NodeId, _msg: DsmMessage) {
            panic!("single-node test should never send remote messages");
        }
    }

    fn single_node() -> DsmNode {
        DsmNode::new(NodeId(0), DsmConfig::default(), Arc::new(NullTransport))
    }

    #[test]
    fn create_read_write_round_trip_locally() {
        let n = single_node();
        let info = n.create_segment(4096, Backing::Kernel);
        n.write(info.id, 100, b"hello dsm").unwrap();
        assert_eq!(n.read(info.id, 100, 9).unwrap(), b"hello dsm");
    }

    #[test]
    fn fresh_segment_reads_zero() {
        let n = single_node();
        let info = n.create_segment(100, Backing::Kernel);
        assert_eq!(n.read(info.id, 0, 100).unwrap(), vec![0; 100]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let n = single_node();
        let info = n.create_segment(3000, Backing::Kernel);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        // Spans the 1024 page boundary.
        n.write(info.id, 1000, &data).unwrap();
        assert_eq!(n.read(info.id, 1000, 200).unwrap(), data);
    }

    #[test]
    fn u64_helpers_round_trip() {
        let n = single_node();
        let info = n.create_segment(64, Backing::Kernel);
        n.write_u64(info.id, 8, 0xdead_beef_cafe).unwrap();
        assert_eq!(n.read_u64(info.id, 8).unwrap(), 0xdead_beef_cafe);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let n = single_node();
        let info = n.create_segment(100, Backing::Kernel);
        let err = n.read(info.id, 90, 20).unwrap_err();
        assert!(matches!(err, DsmError::OutOfBounds { .. }), "{err}");
        let err = n.write(info.id, 100, &[1]).unwrap_err();
        assert!(matches!(err, DsmError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn unknown_segment_is_rejected() {
        let n = single_node();
        let bogus = SegmentId::new(NodeId(3), 9);
        assert_eq!(
            n.read(bogus, 0, 1).unwrap_err(),
            DsmError::UnknownSegment(bogus)
        );
    }

    #[test]
    fn zero_length_read_is_empty_and_faultless() {
        let n = single_node();
        let info = n.create_segment(100, Backing::Kernel);
        assert_eq!(n.read(info.id, 50, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn pageable_segment_needs_a_handler() {
        let n = single_node();
        let info = n.create_segment(100, Backing::UserPager);
        let err = n.read(info.id, 0, 1).unwrap_err();
        assert!(matches!(err, DsmError::NoFaultHandler(_)), "{err}");
    }

    #[test]
    fn pageable_segment_faults_through_handler() {
        let n = single_node();
        let info = n.create_segment(2048, Backing::UserPager);
        n.set_fault_handler(Arc::new(|f: &FaultInfo| {
            FaultOutcome::Supply(vec![f.page.index as u8 + 1; f.page_len])
        }));
        assert_eq!(n.read(info.id, 0, 2).unwrap(), vec![1, 1]);
        assert_eq!(n.read(info.id, 1024, 2).unwrap(), vec![2, 2]);
        assert_eq!(n.stats().user_faults(), 2);
        // Second access: already installed, no new fault.
        assert_eq!(n.read(info.id, 0, 2).unwrap(), vec![1, 1]);
        assert_eq!(n.stats().user_faults(), 2);
    }

    #[test]
    fn pageable_fault_failure_propagates() {
        let n = single_node();
        let info = n.create_segment(100, Backing::UserPager);
        n.set_fault_handler(Arc::new(|_: &FaultInfo| FaultOutcome::Fail));
        let err = n.read(info.id, 0, 1).unwrap_err();
        assert!(matches!(err, DsmError::UnresolvedFault(_)), "{err}");
    }

    #[test]
    fn handler_short_supply_is_padded() {
        let n = single_node();
        let info = n.create_segment(100, Backing::UserPager);
        n.set_fault_handler(Arc::new(|_: &FaultInfo| FaultOutcome::Supply(vec![7; 3])));
        assert_eq!(n.read(info.id, 0, 5).unwrap(), vec![7, 7, 7, 0, 0]);
    }

    #[test]
    fn creator_owns_all_pages_initially() {
        let n = single_node();
        let info = n.create_segment(3000, Backing::Kernel);
        for index in 0..info.page_count() {
            let page = PageId {
                segment: info.id,
                index,
            };
            assert_eq!(n.access_level(page), AccessLevel::Owned);
            let (owner, copyset) = n.directory_entry(page).unwrap();
            assert_eq!(owner, NodeId(0));
            assert!(copyset.is_empty());
        }
    }
}
