//! Coherence protocol wire format.

use crate::{FaultKind, PageId, SegmentInfo};
use doct_net::{NodeId, WireMessage};
use serde::{Deserialize, Serialize};

/// Messages of the single-writer/multiple-reader ownership protocol.
///
/// The protocol is manager-mediated: a faulting node asks the segment's
/// manager, the manager serializes transactions per page and forwards to
/// the current owner, data and acknowledgements flow directly to the
/// faulting node, and the faulting node tells the manager when the
/// transaction is complete.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DsmMessage {
    /// Faulting node → manager: start a fault transaction on `page`.
    FaultRequest {
        /// The faulted page.
        page: PageId,
        /// Read or write fault.
        kind: FaultKind,
        /// The faulting node (transaction coordinator for replies).
        from: NodeId,
    },
    /// Manager → current owner: serve `requester`.
    ///
    /// For a read fault the owner downgrades to a read copy and sends the
    /// page read-only; for a write fault it sends the page with ownership
    /// and invalidates its local copy.
    Forward {
        /// The page being served.
        page: PageId,
        /// Node the data must be sent to.
        requester: NodeId,
        /// Read or write fault being served.
        kind: FaultKind,
    },
    /// Manager → copy holder: drop your read copy of `page` and ack to
    /// `ack_to` (the writer waiting for exclusivity).
    Invalidate {
        /// Page to drop.
        page: PageId,
        /// Node collecting invalidation acks.
        ack_to: NodeId,
    },
    /// Copy holder → writer: read copy dropped.
    InvalidateAck {
        /// Page that was dropped.
        page: PageId,
    },
    /// Manager → faulting node: how many invalidation acks to expect
    /// before the write may proceed (sent for write faults only).
    WriteGrant {
        /// Page being granted.
        page: PageId,
        /// Number of [`DsmMessage::InvalidateAck`]s that will arrive.
        expected_acks: u32,
    },
    /// Owner → faulting node: page contents.
    PageData {
        /// Page carried.
        page: PageId,
        /// Contents (exactly the used length of the page).
        data: Vec<u8>,
        /// `true` if this satisfies a read fault (copy), `false` if it
        /// carries ownership for a write fault.
        readonly: bool,
    },
    /// Faulting node → manager: transaction finished; directory may commit
    /// the new owner/copyset and start the next queued transaction.
    FaultComplete {
        /// Page whose transaction completed.
        page: PageId,
        /// The fault kind that completed.
        kind: FaultKind,
        /// The node that faulted (new owner if `kind` is a write).
        from: NodeId,
    },
    /// Creating node → everyone: a segment now exists (the host kernel
    /// forwards this so all nodes can attach).
    Announce {
        /// Geometry and policy of the new segment.
        info: SegmentInfo,
    },
}

impl WireMessage for DsmMessage {
    fn wire_size(&self) -> usize {
        match self {
            DsmMessage::PageData { data, .. } => 64 + data.len(),
            _ => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegmentId;

    #[test]
    fn page_data_wire_size_includes_payload() {
        let msg = DsmMessage::PageData {
            page: PageId {
                segment: SegmentId::new(NodeId(0), 1),
                index: 0,
            },
            data: vec![0; 1024],
            readonly: true,
        };
        assert_eq!(msg.wire_size(), 1088);
    }

    #[test]
    fn control_messages_are_header_sized() {
        let msg = DsmMessage::Invalidate {
            page: PageId {
                segment: SegmentId::new(NodeId(0), 1),
                index: 3,
            },
            ack_to: NodeId(2),
        };
        assert_eq!(msg.wire_size(), 64);
    }
}
