//! Per-node page state and the manager directory.

use crate::{FaultKind, PageId};
use doct_net::NodeId;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Access level a node currently holds on a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessLevel {
    /// No valid copy.
    Invalid,
    /// Read-only copy (one of possibly many).
    Read,
    /// Exclusive, writable copy (the single writer).
    Owned,
}

impl AccessLevel {
    /// Whether this level satisfies an access of `kind`.
    pub fn satisfies(self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Read => self >= AccessLevel::Read,
            FaultKind::Write => self == AccessLevel::Owned,
        }
    }
}

/// A page frame on one node.
#[derive(Debug)]
pub(crate) struct LocalPage {
    pub access: AccessLevel,
    /// Present iff `access != Invalid`.
    pub data: Option<Vec<u8>>,
}

impl LocalPage {
    pub fn invalid() -> Self {
        LocalPage {
            access: AccessLevel::Invalid,
            data: None,
        }
    }

    pub fn owned(data: Vec<u8>) -> Self {
        LocalPage {
            access: AccessLevel::Owned,
            data: Some(data),
        }
    }
}

/// An in-flight fault transaction on the faulting node.
#[derive(Debug)]
pub(crate) struct InFlight {
    pub kind: FaultKind,
    /// Page contents received from the previous owner (None until then).
    pub data: Option<Vec<u8>>,
    /// For write faults: how many invalidation acks the manager promised
    /// (None until the `WriteGrant` arrives).
    pub expected_acks: Option<u32>,
    /// Acks received so far.
    pub acks: u32,
}

impl InFlight {
    pub fn new(kind: FaultKind) -> Self {
        InFlight {
            kind,
            data: None,
            expected_acks: None,
            acks: 0,
        }
    }

    /// Whether the transaction has everything it needs to commit.
    pub fn is_complete(&self) -> bool {
        match self.kind {
            FaultKind::Read => self.data.is_some(),
            FaultKind::Write => {
                self.data.is_some() && self.expected_acks.is_some_and(|e| e == self.acks)
            }
        }
    }
}

/// The manager's view of one page: current owner, read-copy holders, and a
/// queue serializing fault transactions.
#[derive(Debug)]
pub(crate) struct DirEntry {
    pub owner: NodeId,
    /// Read-copy holders, excluding the owner.
    pub copyset: BTreeSet<NodeId>,
    /// A transaction is in progress; new requests queue.
    pub busy: bool,
    pub queue: VecDeque<(NodeId, FaultKind)>,
}

impl DirEntry {
    pub fn new(owner: NodeId) -> Self {
        DirEntry {
            owner,
            copyset: BTreeSet::new(),
            busy: false,
            queue: VecDeque::new(),
        }
    }
}

/// All mutable DSM state of one node, behind the node's mutex.
#[derive(Debug, Default)]
pub(crate) struct NodeState {
    /// Segments this node knows about (created or attached).
    pub segments: HashMap<crate::SegmentId, crate::SegmentInfo>,
    /// Local page frames.
    pub pages: HashMap<PageId, LocalPage>,
    /// Fault transactions this node is currently coordinating.
    pub inflight: HashMap<PageId, InFlight>,
    /// Manager directory for segments this node manages.
    pub directory: HashMap<PageId, DirEntry>,
    /// Per-node segment creation sequence.
    pub next_segment_seq: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_satisfaction_matrix() {
        assert!(!AccessLevel::Invalid.satisfies(FaultKind::Read));
        assert!(!AccessLevel::Invalid.satisfies(FaultKind::Write));
        assert!(AccessLevel::Read.satisfies(FaultKind::Read));
        assert!(!AccessLevel::Read.satisfies(FaultKind::Write));
        assert!(AccessLevel::Owned.satisfies(FaultKind::Read));
        assert!(AccessLevel::Owned.satisfies(FaultKind::Write));
    }

    #[test]
    fn read_transaction_completes_on_data() {
        let mut t = InFlight::new(FaultKind::Read);
        assert!(!t.is_complete());
        t.data = Some(vec![1]);
        assert!(t.is_complete());
    }

    #[test]
    fn write_transaction_needs_data_grant_and_acks() {
        let mut t = InFlight::new(FaultKind::Write);
        t.data = Some(vec![1]);
        assert!(!t.is_complete(), "no grant yet");
        t.expected_acks = Some(2);
        assert!(!t.is_complete(), "acks outstanding");
        t.acks = 2;
        assert!(t.is_complete());
    }

    #[test]
    fn write_transaction_with_zero_holders_completes_on_grant_and_data() {
        let mut t = InFlight::new(FaultKind::Write);
        t.expected_acks = Some(0);
        assert!(!t.is_complete(), "data outstanding");
        t.data = Some(vec![]);
        assert!(t.is_complete());
    }
}
