//! Distributed lock cleanup via handler chaining (§4.2 and the §1
//! motivation): "Often, it is not even possible to know of all the locks
//! the computation has acquired" — unless every acquire chains its unlock
//! routine onto the thread's TERMINATE handler.
//!
//! A worker thread wanders the cluster acquiring locks from managers on
//! three nodes, then hangs. We ^C it and watch every lock come free.
//!
//! Run with: `cargo run --example lock_cleanup`

use doct::prelude::*;
use std::time::Duration;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(3);
    let _facility = EventFacility::install(&cluster);

    let managers: Vec<LockManager> = (0..3)
        .map(|i| LockManager::create(&cluster, NodeId(i)))
        .collect::<Result<_, _>>()?;

    let ms = managers.clone();
    let worker = cluster.spawn_fn(0, move |ctx| {
        for (i, m) in ms.iter().enumerate() {
            for name in ["data", "index"] {
                let lock = m.acquire(ctx, name)?;
                println!(
                    "thread {} acquired {:?} from manager on n{i}",
                    ctx.thread_id(),
                    lock.name()
                );
                // Deliberately never released: the unlock routine is now
                // chained to our TERMINATE handler.
            }
        }
        println!("worker hangs holding 6 locks across 3 nodes…");
        ctx.sleep(Duration::from_secs(60))?;
        Ok(Value::Null)
    })?;

    std::thread::sleep(Duration::from_millis(200));
    let held: i64 = {
        let ms = managers.clone();
        cluster
            .spawn_fn(1, move |ctx| {
                let mut total = 0;
                for m in &ms {
                    total += m.held_count(ctx)?;
                }
                Ok(Value::Int(total))
            })?
            .join()?
            .as_int()
            .unwrap_or(0)
    };
    println!("locks held before termination: {held}");
    assert_eq!(held, 6);

    println!("terminating the worker (^C)…");
    let _ = cluster
        .raise_from(2, SystemEvent::Terminate, Value::Null, worker.thread())
        .wait();
    match worker.join_timeout(Duration::from_secs(10)) {
        Some(Err(KernelError::Terminated)) => println!("worker terminated"),
        other => println!("unexpected outcome: {other:?}"),
    }

    let held: i64 = cluster
        .spawn_fn(1, move |ctx| {
            let mut total = 0;
            for m in &managers {
                total += m.held_count(ctx)?;
            }
            Ok(Value::Int(total))
        })?
        .join()?
        .as_int()
        .unwrap_or(0);
    println!("locks held after termination: {held}");
    assert_eq!(held, 0, "every lock released, regardless of location");
    Ok(())
}
