//! Distributed liveliness monitoring (§6.2): a periodic TIMER event
//! chases a computation across nodes; a per-thread handler samples the
//! thread's state in whatever object it currently occupies and reports to
//! a central monitor server.
//!
//! Run with: `cargo run --example monitor`

use doct::prelude::*;
use std::time::Duration;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(4);
    let _facility = EventFacility::install(&cluster);
    let server = MonitorServer::create(&cluster, NodeId(3))?;

    cluster.register_class(
        "stage",
        ClassBuilder::new("stage")
            .entry("run", |ctx, args| {
                // Compute for a while in this object (on this node).
                let rounds = args.as_int().unwrap_or(20);
                for _ in 0..rounds {
                    ctx.compute(5_000)?;
                    ctx.sleep(Duration::from_millis(3))?;
                }
                Ok(Value::Null)
            })
            .build(),
    );
    // A pipeline of objects on nodes 0, 1, 2.
    let stages: Vec<ObjectId> = (0..3)
        .map(|i| cluster.create_object(ObjectConfig::new("stage", NodeId(i))))
        .collect::<Result<_, _>>()?;

    let handle = cluster.spawn_fn(0, move |ctx| {
        let session = server.start(ctx, Duration::from_millis(8));
        for (i, &stage) in stages.iter().enumerate() {
            println!("entering stage {i}");
            ctx.invoke(stage, "run", 25i64)?;
        }
        server.stop(ctx, session);
        Ok(Value::Null)
    })?;
    handle.join()?;

    let samples = server.samples(&cluster)?;
    println!("collected {} samples:", samples.len());
    for s in &samples {
        println!(
            "  thread={} node=n{} pc={} object={:?}",
            s.thread, s.node, s.pc, s.object
        );
    }
    let nodes_seen: std::collections::BTreeSet<u32> = samples.iter().map(|s| s.node).collect();
    println!("thread observed on nodes: {nodes_seen:?}");
    assert!(
        nodes_seen.len() >= 2,
        "monitor must follow the thread across nodes"
    );
    Ok(())
}
