//! A user-level virtual memory manager (§6.4): pageable segments whose
//! faults are served by a pager server object through VM_FAULT events,
//! bypassing the kernel's sequentially consistent DSM.
//!
//! Here the pager materializes a virtual "matrix" lazily: page k holds
//! the k-th row, computed on demand. Threads on different nodes touch
//! rows; each fault suspends the toucher and is satisfied by the server.
//!
//! Run with: `cargo run --example external_pager`

use doct::prelude::*;
use doct::services::pager::create_pageable_segment;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(3);
    let facility = EventFacility::install(&cluster);

    // The paging policy: row r is filled with (r * 3 + column) % 251.
    let server = PagerServer::create(&cluster, &facility, NodeId(2), |_seg, row: u32, len| {
        (0..len)
            .map(|col| ((row as usize * 3 + col) % 251) as u8)
            .collect()
    })?;
    for n in 0..cluster.node_count() {
        server.serve_node(&cluster, n);
    }

    // Tag a 16-page region as pageable.
    let seg = create_pageable_segment(&cluster, 0, 16 * 1024);
    println!("pageable segment {} created (16 pages)", seg.id);

    // Touch rows from two different nodes.
    for (node, rows) in [(0usize, [0u32, 1, 2, 3]), (1usize, [4u32, 5, 6, 7])] {
        for row in rows {
            let offset = row as usize * 1024;
            let data = cluster
                .kernel(node)
                .dsm()
                .read(seg.id, offset, 8)
                .map_err(KernelError::Dsm)?;
            println!("node n{node} row {row}: {data:?}");
            assert_eq!(data[0] as u32, (row * 3) % 251);
        }
    }

    let stats = server.stats(&cluster)?;
    println!("pager stats: {stats}");
    let faults = stats.get("faults").and_then(Value::as_int).unwrap_or(0);
    assert_eq!(faults, 8, "one fault per first touch");

    // Re-reads hit the locally installed pages: no new faults.
    cluster
        .kernel(0)
        .dsm()
        .read(seg.id, 0, 8)
        .map_err(KernelError::Dsm)?;
    let stats = server.stats(&cluster)?;
    assert_eq!(stats.get("faults").and_then(Value::as_int), Some(8));
    println!("re-read served from the installed page (no new fault)");
    Ok(())
}
