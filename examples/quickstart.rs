//! Quickstart: a 3-node DO/CT cluster, one shared object, thread-based
//! and object-based event handling in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use doct::prelude::*;

fn main() -> Result<(), KernelError> {
    // A simulated 3-node cluster with the event facility installed.
    let cluster = Cluster::new(3);
    let facility = EventFacility::install(&cluster);
    let progress = facility.register_event("PROGRESS");

    // An object class: code is replicated; per-object state lives in DSM.
    cluster.register_class(
        "accumulator",
        ClassBuilder::new("accumulator")
            .entry("add", |ctx, args| {
                ctx.with_state(|s| {
                    let total = s.get("total").and_then(Value::as_int).unwrap_or(0)
                        + args.as_int().unwrap_or(0);
                    s.set("total", total);
                    Value::Int(total)
                })
            })
            .build(),
    );

    // The object lives on node 2; we will invoke it from node 0 — the
    // logical thread crosses the machine boundary.
    let acc = cluster.create_object(ObjectConfig::new("accumulator", NodeId(2)))?;

    // Object-based handler: fires even though no thread is inside `acc`.
    facility.on_object_event(&cluster, acc, progress.clone(), |_ctx, obj, block| {
        println!("[object {obj}] PROGRESS event: {}", block.payload);
        HandlerDecision::Resume(Value::Null)
    })?;

    let progress2 = progress.clone();
    let handle = cluster.spawn_fn(0, move |ctx| {
        // Thread-based handler: travels with this thread everywhere.
        ctx.attach_handler(
            progress2.clone(),
            AttachSpec::proc("echo", |hctx, block| {
                println!(
                    "[thread {} on {}] PROGRESS: {}",
                    hctx.thread_id(),
                    hctx.node_id(),
                    block.payload
                );
                HandlerDecision::Resume(Value::Null)
            }),
        );
        let mut total = Value::Null;
        for i in 1..=5i64 {
            total = ctx.invoke(acc, "add", i)?;
            // Notify ourselves (asynchronously) and the object.
            let me = ctx.thread_id();
            let _ = ctx.raise(progress2.clone(), total.clone(), me).wait();
            let _ = ctx.raise(progress2.clone(), total.clone(), acc).wait();
            ctx.poll_events()?;
        }
        Ok(total)
    })?;

    let total = handle.join()?;
    println!("final total: {total}");
    assert_eq!(total, Value::Int(15));
    Ok(())
}
