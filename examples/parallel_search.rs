//! Parallel search with asynchronous notification of partial results —
//! the paper's §1 motivating technique: "starting up multiple processes
//! (or threads) to perform a task (concurrently) and then asynchronously
//! notify each other of partial results obtained (unexpected discoveries,
//! quicker heuristic searches, etc.)".
//!
//! Worker threads on every node search slices of a key space; the first
//! to find the needle raises FOUND to the whole thread group, and the
//! others cut their searches short.
//!
//! Run with: `cargo run --example parallel_search`

use doct::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NODES: usize = 4;
const SPACE: i64 = 4_000_000;
const NEEDLE: i64 = 2_345_678; // lives in worker 2's slice

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(NODES);
    let facility = EventFacility::install(&cluster);
    let found = facility.register_event("FOUND");
    let group = cluster.create_group();

    let mut handles = Vec::new();
    for w in 0..NODES {
        let found = found.clone();
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        handles.push(cluster.spawn_fn_with(w, opts, move |ctx| {
            // A flag flipped by the FOUND handler; checked between chunks.
            let stop = Arc::new(AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            ctx.attach_handler(
                found.clone(),
                AttachSpec::proc("stop-searching", move |hctx, block| {
                    println!(
                        "worker on {} told: found at {} — stopping",
                        hctx.node_id(),
                        block.payload
                    );
                    stop_flag.store(true, Ordering::Relaxed);
                    HandlerDecision::Resume(Value::Null)
                }),
            );

            let slice = SPACE / NODES as i64;
            let (lo, hi) = (w as i64 * slice, (w as i64 + 1) * slice);
            let mut scanned = 0i64;
            for candidate in lo..hi {
                if candidate == NEEDLE {
                    println!("worker on n{w} FOUND the needle at {candidate}");
                    // Tell everyone (including ourselves — harmless).
                    let _ = ctx
                        .raise(found.clone(), candidate, RaiseTarget::Group(group))
                        .wait();
                    return Ok(Value::Int(scanned));
                }
                scanned += 1;
                if scanned % 10_000 == 0 {
                    ctx.poll_events()?; // delivery point
                    if stop.load(Ordering::Relaxed) {
                        return Ok(Value::Int(scanned));
                    }
                }
            }
            Ok(Value::Int(scanned))
        })?);
    }

    let mut total_scanned = 0i64;
    for (w, h) in handles.into_iter().enumerate() {
        let scanned = h.join()?.as_int().unwrap_or(0);
        println!("worker {w} scanned {scanned} keys");
        total_scanned += scanned;
    }
    println!(
        "total scanned: {total_scanned} of {SPACE} ({}% saved by notification)",
        100 - 100 * total_scanned / SPACE
    );
    assert!(
        total_scanned < SPACE,
        "early stopping must save work: {total_scanned}"
    );
    Ok(())
}
