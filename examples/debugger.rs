//! A distributed debugger session (§4.1's buddy-handler application):
//! a program running across the cluster hits breakpoints that are routed
//! to a central debugger server, which records the thread's state and
//! applies the operator's policy — continue, pause-until-resume, or kill.
//!
//! Run with: `cargo run --example debugger`

use doct::prelude::*;
use std::time::Duration;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(3);
    let _facility = EventFacility::install(&cluster);
    let debugger = Debugger::create(&cluster, NodeId(2))?;

    cluster.register_class(
        "phases",
        ClassBuilder::new("phases")
            .entry("run", |ctx, _| {
                ctx.compute(5_000)?;
                Debugger::breakpoint(ctx, "after-init")?;
                ctx.compute(5_000)?;
                Debugger::breakpoint(ctx, "before-commit")?;
                ctx.compute(5_000)?;
                Ok(Value::Str("committed".into()))
            })
            .build(),
    );
    let prog = cluster.create_object(ObjectConfig::new("phases", NodeId(1)))?;

    // Operator policy: pause the program before it commits.
    debugger.set_policy(&cluster, "before-commit", BreakAction::Pause)?;

    let handle = cluster.spawn_fn(0, move |ctx| {
        debugger.attach(ctx);
        ctx.invoke(prog, "run", Value::Null)
    })?;
    let thread = handle.thread();

    // The program reaches "before-commit" and stops there.
    std::thread::sleep(Duration::from_millis(300));
    println!("breakpoint hits so far:");
    for hit in debugger.hits(&cluster)? {
        println!(
            "  {} at {:?} on n{} (pc={}, object={:?})",
            hit.thread, hit.label, hit.node, hit.pc, hit.object
        );
    }
    assert!(!handle.is_finished(), "program paused at before-commit");
    println!("program is paused at 'before-commit'; operator inspects, then resumes…");

    debugger.resume(&cluster, thread)?;
    let result = handle.join()?;
    println!("program finished: {result}");
    assert_eq!(result, Value::Str("committed".into()));
    Ok(())
}
