//! The distributed ^C problem (§6.3): cleanly terminating an application
//! whose threads and objects span the cluster, without orphaning
//! asynchronously spawned children and while letting every object clean
//! up — even objects shared with unrelated applications.
//!
//! Run with: `cargo run --example distributed_ctrl_c`

use doct::prelude::*;
use std::time::Duration;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(4);
    let facility = EventFacility::install(&cluster);

    cluster.register_class(
        "service",
        ClassBuilder::new("service")
            .entry("serve", |ctx, args| {
                ctx.emit(format!("serving on {}", ctx.node_id()));
                ctx.sleep(Duration::from_millis(args.as_int().unwrap_or(60_000) as u64))?;
                Ok(Value::Null)
            })
            .build(),
    );

    // The application's objects, spread over the cluster.
    let objects: Vec<ObjectId> = (0..4)
        .map(|i| cluster.create_object(ObjectConfig::new("service", NodeId(i))))
        .collect::<Result<_, _>>()?;

    // Every object registers its ABORT cleanup (close I/O, release
    // resources…).
    for &obj in &objects {
        install_abort_cleanup(&facility, &cluster, obj, move |ctx, obj, _block| {
            ctx.emit(format!("object {obj}: cleaning up (ABORT)"));
            println!("object {obj}: ABORT cleanup ran");
        })?;
    }

    // The application: a root thread in a group, spawning asynchronous
    // children that work inside remote objects.
    let group = cluster.create_group();
    let objs = objects.clone();
    let root = cluster.spawn_fn_with(
        0,
        SpawnOptions {
            group: Some(group),
            io_channel: Some("console".into()),
            ..Default::default()
        },
        move |ctx| {
            // Arm the §6.3 protocol on the root thread.
            arm_ctrl_c(ctx, objs.clone());
            // Children inherit the group and the armed event registry.
            let kids: Vec<_> = objs[1..]
                .iter()
                .map(|&o| ctx.invoke_async(o, "serve", 60_000i64))
                .collect();
            println!(
                "root {} started {} children; group has {} threads",
                ctx.thread_id(),
                kids.len(),
                3 + 1
            );
            ctx.invoke(objs[0], "serve", 60_000i64)?;
            for k in kids {
                let _ = k.claim();
            }
            Ok(Value::Null)
        },
    )?;

    std::thread::sleep(Duration::from_millis(300));
    println!(
        "before ^C: {} live activations, {} group members",
        cluster.live_activations(),
        cluster.groups().member_count(group)
    );

    // The user hits ^C at the console attached to node 3.
    println!("^C pressed");
    let summary = press_ctrl_c(&cluster, 3, root.thread());
    println!("TERMINATE delivered: {summary:?}");

    match root.join_timeout(Duration::from_secs(10)) {
        Some(Err(KernelError::Terminated)) => println!("root terminated cleanly"),
        other => println!("unexpected root outcome: {other:?}"),
    }
    let quiet = cluster.await_quiescence(Duration::from_secs(10));
    println!(
        "after ^C: quiescent={quiet}, live activations={}, group members={}",
        cluster.live_activations(),
        cluster.groups().member_count(group)
    );
    assert!(quiet, "no orphan threads may remain");
    Ok(())
}
