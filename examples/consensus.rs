//! Group coordination with the paper's §3 user events: worker threads
//! proceed in barrier-separated phases (SYNCHRONIZE) and decide whether
//! to apply their combined result with a two-phase vote
//! (PREPARE → COMMIT / ABORT).
//!
//! Run with: `cargo run --example consensus`

use doct::prelude::*;
use doct::services::coordination::{Barrier, Vote, VoteOutcome};
use std::sync::atomic::Ordering;
use std::time::Duration;

const WORKERS: usize = 3;

fn main() -> Result<(), KernelError> {
    let cluster = Cluster::new(4);
    let facility = EventFacility::install(&cluster);
    let group = cluster.create_group();
    // Everyone (workers + coordinator) synchronizes at this barrier.
    let barrier = Barrier::create(&cluster, &facility, NodeId(0), group, WORKERS + 1)?;
    let vote = Vote::new(&facility, group);

    // Shared results object.
    cluster.register_class(
        "results",
        ClassBuilder::new("results")
            .entry("put", |ctx, args| {
                ctx.with_state(|s| {
                    let total = s.get("total").and_then(Value::as_int).unwrap_or(0)
                        + args.as_int().unwrap_or(0);
                    s.set("total", total);
                    Value::Int(total)
                })
            })
            .entry("total", |ctx, _| {
                Ok(ctx
                    .read_state()?
                    .get("total")
                    .cloned()
                    .unwrap_or(Value::Int(0)))
            })
            .build(),
    );
    let results = cluster.create_object(
        ObjectConfig::new("results", NodeId(3))
            .with_state(Value::map())
            .exclusive(),
    )?;

    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        workers.push(cluster.spawn_fn_with(w, opts, move |ctx| {
            // Each worker votes yes only if the combined total looks sane.
            vote.participate(ctx, |proposal| {
                proposal.get("total").and_then(Value::as_int).unwrap_or(0) < 1000
            });
            let (committed, aborted) = vote.track_outcomes(ctx);

            // Phase 1: compute a partial result.
            ctx.compute(10_000)?;
            let partial = (w as i64 + 1) * 100;
            ctx.invoke(results, "put", partial)?;
            println!("worker {w}: contributed {partial}");
            barrier.wait(ctx)?; // everyone's partials are in

            // Phase 2: wait for the coordinator's announcement.
            ctx.sleep(Duration::from_millis(300))?;
            Ok(Value::List(vec![
                Value::Int(committed.load(Ordering::Relaxed) as i64),
                Value::Int(aborted.load(Ordering::Relaxed) as i64),
            ]))
        })?);
    }

    // The coordinator joins the barrier, reads the combined result, and
    // runs the vote.
    let opts = SpawnOptions {
        group: Some(group),
        ..Default::default()
    };
    let coordinator = cluster.spawn_fn_with(3, opts, move |ctx| {
        barrier.wait(ctx)?; // all partials are in
        let total = ctx.invoke(results, "total", Value::Null)?;
        println!("coordinator: combined total = {total}");
        let mut proposal = Value::map();
        proposal.set("total", total);
        match vote.run(ctx, proposal)? {
            VoteOutcome::Committed => Ok(Value::Str("committed".into())),
            VoteOutcome::Aborted => Ok(Value::Str("aborted".into())),
        }
    })?;

    let outcome = coordinator.join()?;
    println!("vote outcome: {outcome}");
    assert_eq!(outcome, Value::Str("committed".into()), "600 < 1000");
    for (w, h) in workers.into_iter().enumerate() {
        let seen = h.join()?;
        println!("worker {w} saw announcements {seen}");
        assert_eq!(
            seen,
            Value::List(vec![Value::Int(1), Value::Int(0)]),
            "every worker saw exactly one COMMIT"
        );
    }
    Ok(())
}
