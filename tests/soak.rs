//! Soak test: a 6-node cluster under several seconds of randomized
//! concurrent load — invocations, locked read-modify-writes, event
//! raises, computes and sleeps — followed by a full distributed
//! termination. Invariants checked at the end:
//!
//! * locked counter increments are never lost (the lock manager works
//!   under contention),
//! * every lock is released after termination (cleanup chains ran),
//! * the cluster quiesces with zero orphan activations,
//! * the telemetry delivery ledger balances: every tracked raise was
//!   resolved as delivered, dead, or timed out.
//!
//! The randomized schedules derive from one base seed, `DOCT_SEED`
//! (default below), so failures replay deterministically; the seed is
//! printed when a test panics.

use doct::prelude::*;
use doct_events::EventFacility;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 6;
const WORKERS: usize = 18;
const RUN_FOR: Duration = Duration::from_secs(3);

/// Base seed for every RNG in this file: `DOCT_SEED` if set, else a fixed
/// default so runs are deterministic out of the box.
fn base_seed() -> u64 {
    match std::env::var("DOCT_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("DOCT_SEED must be a u64, got {s:?}")),
        Err(_) => 0xD0C7_5EED,
    }
}

/// Prints the seed if the test panics, so the failing schedule can be
/// replayed with `DOCT_SEED=<seed> cargo test --test soak`.
struct SeedReport(u64);

impl Drop for SeedReport {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "soak failed with base seed {}; replay with DOCT_SEED={}",
                self.0, self.0
            );
        }
    }
}

/// At quiescence every tracked raise must be accounted for:
/// requested == delivered + dead + timed out + lost + overloaded.
/// Shed raises are *typed* outcomes, never silent drops.
fn assert_delivery_ledger_balances(cluster: &Cluster) {
    let counters = cluster.telemetry().metrics().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    let requested = get("delivery.requested");
    let resolved = get("delivery.delivered")
        + get("delivery.dead")
        + get("delivery.timeout")
        + get("delivery.lost")
        + get("delivery.overloaded");
    assert_eq!(
        requested,
        resolved,
        "delivery ledger out of balance: requested {requested} != \
         delivered {} + dead {} + timeout {} + lost {} + overloaded {}",
        get("delivery.delivered"),
        get("delivery.dead"),
        get("delivery.timeout"),
        get("delivery.lost"),
        get("delivery.overloaded")
    );
    assert!(requested > 0, "soak raised no tracked events");
}

#[test]
fn randomized_soak_with_clean_teardown() {
    let seed = base_seed();
    let _report = SeedReport(seed);
    let cluster = Cluster::new(NODES);
    let facility = EventFacility::install(&cluster);
    facility.register_event("NUDGE");
    let locks = LockManager::create(&cluster, NodeId(1)).unwrap();

    cluster.register_class(
        "cell",
        ClassBuilder::new("cell")
            .entry("incr", |ctx, _| {
                ctx.with_state(|s| {
                    let n = s.get("n").and_then(Value::as_int).unwrap_or(0);
                    s.set("n", n + 1);
                    Value::Int(n + 1)
                })
            })
            .entry("get", |ctx, _| {
                Ok(ctx.read_state()?.get("n").cloned().unwrap_or(Value::Int(0)))
            })
            .build(),
    );
    // One unprotected cell per node (exclusive, so invocations serialize)
    // plus one shared cell guarded by the lock manager.
    let cells: Vec<ObjectId> = (0..NODES)
        .map(|i| {
            cluster
                .create_object(
                    ObjectConfig::new("cell", NodeId(i as u32))
                        .with_state(Value::map())
                        .exclusive(),
                )
                .unwrap()
        })
        .collect();
    let shared = cluster
        .create_object(ObjectConfig::new("cell", NodeId(0)).with_state(Value::map()))
        .unwrap(); // NOT exclusive: protected by the lock instead

    let group = cluster.create_group();
    let stop = Arc::new(AtomicBool::new(false));
    let locked_increments = Arc::new(AtomicU64::new(0));
    let nudges_handled = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let cells = cells.clone();
        let stop = Arc::clone(&stop);
        let locked_increments = Arc::clone(&locked_increments);
        let nudges_handled = Arc::clone(&nudges_handled);
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        handles.push(
            cluster
                .spawn_fn_with(w % NODES, opts, move |ctx| {
                    let nh = Arc::clone(&nudges_handled);
                    ctx.attach_handler(
                        "NUDGE",
                        AttachSpec::proc("nudge", move |_c, _b| {
                            nh.fetch_add(1, Ordering::Relaxed);
                            HandlerDecision::Resume(Value::Null)
                        }),
                    );
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
                    let mut group_members: Vec<ThreadId> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        match rng.gen_range(0..6) {
                            0 => {
                                // Plain invocation of a random cell.
                                let cell = cells[rng.gen_range(0..cells.len())];
                                ctx.invoke(cell, "incr", Value::Null)?;
                            }
                            1 => {
                                // Locked increment of the shared cell.
                                let lock = locks.acquire(ctx, "shared-cell")?;
                                ctx.invoke(shared, "incr", Value::Null)?;
                                locked_increments.fetch_add(1, Ordering::Relaxed);
                                locks.release(ctx, lock)?;
                            }
                            2 => {
                                // Nudge a random known sibling (or learn one).
                                if group_members.is_empty() {
                                    group_members = ctx
                                        .kernel()
                                        .groups()
                                        .members(ctx.attributes().group.expect("in group"));
                                }
                                if let Some(&t) =
                                    group_members.get(rng.gen_range(0..group_members.len()))
                                {
                                    ctx.raise("NUDGE", Value::Null, t).detach();
                                }
                            }
                            3 => ctx.compute(rng.gen_range(100..5_000))?,
                            4 => ctx.sleep(Duration::from_millis(rng.gen_range(1..4)))?,
                            _ => {
                                // Occasionally hold a lock "carelessly"
                                // across other work, then release.
                                let name = format!("aux-{}", rng.gen_range(0..4));
                                if let Some(lock) = locks.try_acquire(ctx, &name)? {
                                    ctx.compute(rng.gen_range(100..2_000))?;
                                    locks.release(ctx, lock)?;
                                }
                            }
                        }
                        ctx.poll_events()?;
                    }
                    Ok(Value::Null)
                })
                .unwrap(),
        );
    }

    // Let it churn.
    std::thread::sleep(RUN_FOR);
    stop.store(true, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut finished = 0;
    for h in handles {
        match h.join_timeout(deadline.saturating_duration_since(Instant::now())) {
            Some(Ok(_)) => finished += 1,
            Some(Err(e)) => panic!("worker failed: {e}"),
            None => panic!("worker hung"),
        }
    }
    assert_eq!(finished, WORKERS);
    assert!(cluster.await_quiescence(Duration::from_secs(10)), "orphans");

    // Locked increments were never lost.
    let shared_total = cluster
        .spawn(0, shared, "get", Value::Null)
        .unwrap()
        .join()
        .unwrap()
        .as_int()
        .unwrap_or(-1) as u64;
    assert_eq!(
        shared_total,
        locked_increments.load(Ordering::Relaxed),
        "mutual exclusion must prevent lost updates"
    );

    // Every lock came back.
    let held = cluster
        .spawn_fn(2, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(0), "all locks released");

    // The cluster actually did meaningful work.
    assert!(
        shared_total > 10,
        "suspiciously little contention work: {shared_total}"
    );
    assert!(
        nudges_handled.load(Ordering::Relaxed) > 10,
        "suspiciously few events handled"
    );

    assert_delivery_ledger_balances(&cluster);
}

#[test]
fn soak_with_hard_termination_releases_everything() {
    // Same churn, but instead of a cooperative stop the whole group is
    // terminated mid-flight (QUIT). Afterwards: no orphans and no held
    // locks — even for threads killed inside their critical sections.
    let seed = base_seed();
    let _report = SeedReport(seed);
    let cluster = Cluster::new(4);
    let facility = EventFacility::install(&cluster);
    facility.register_event("NUDGE");
    let locks = LockManager::create(&cluster, NodeId(2)).unwrap();
    cluster.register_class(
        "cell2",
        ClassBuilder::new("cell2")
            .entry("incr", |ctx, _| {
                ctx.with_state(|s| {
                    let n = s.get("n").and_then(Value::as_int).unwrap_or(0);
                    s.set("n", n + 1);
                    Value::Int(n + 1)
                })
            })
            .build(),
    );
    let shared = cluster
        .create_object(ObjectConfig::new("cell2", NodeId(0)).with_state(Value::map()))
        .unwrap();
    let group = cluster.create_group();
    let mut handles = Vec::new();
    for w in 0..12usize {
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        handles.push(
            cluster
                .spawn_fn_with(w % 4, opts, move |ctx| {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xBAD + w as u64));
                    loop {
                        let lock = locks.acquire(ctx, "hot")?;
                        ctx.invoke(shared, "incr", Value::Null)?;
                        ctx.compute(rng.gen_range(100..2_000))?;
                        locks.release(ctx, lock)?;
                        ctx.sleep(Duration::from_millis(1))?;
                    }
                })
                .unwrap(),
        );
    }
    std::thread::sleep(Duration::from_millis(800));
    // Kill everyone mid-flight. Fast-moving threads can evade a single
    // QUIT wave (the §7.1 race), so the kernel helper re-raises until the
    // group drains.
    assert!(
        cluster.terminate_group(group, Duration::from_secs(20)),
        "group failed to drain"
    );
    for h in handles {
        let r = h.join_timeout(Duration::from_secs(15)).expect("terminated");
        assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    }
    assert!(cluster.await_quiescence(Duration::from_secs(10)), "orphans");
    // The hot lock must be free again: threads killed inside the critical
    // section were cleaned up by their chained unlock handlers.
    let held = cluster
        .spawn_fn(1, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(0), "no lock leaked through the kill");
    assert_delivery_ledger_balances(&cluster);
}
