//! End-to-end telemetry lifecycle check: one synchronous raise across a
//! 2-node cluster must leave a trace covering every stage of the event's
//! life — raise, route, network send, delivery, handler-chain walk, and
//! the unwind/ack — with timestamps that never run backwards along the
//! causal chain.

use doct::prelude::*;
use doct_events::EventFacility;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn remote_sync_raise_traces_every_lifecycle_stage() {
    let cluster = Cluster::new(2);
    let facility = EventFacility::install(&cluster);
    let ev = facility.register_event("LIFE");

    // Recipient thread on node 1; the raise below must cross the network.
    let ev2 = ev.clone();
    let target = cluster
        .spawn_fn(1, move |ctx| {
            ctx.attach_handler(
                ev2,
                AttachSpec::proc("ack", |_c, b| {
                    HandlerDecision::Resume(Value::Int(b.payload.as_int().unwrap_or(0) + 1))
                }),
            );
            ctx.sleep(Duration::from_secs(60))?;
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Synchronous raise from node 0: blocks until the remote handler's
    // verdict comes back, so by the time join() returns the whole
    // lifecycle has been traced.
    let tid = target.thread();
    let verdict = cluster
        .spawn_fn(0, move |ctx| ctx.raise_and_wait(ev, 41i64, tid))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(verdict, Value::Int(42));

    let telemetry = Arc::clone(cluster.telemetry());
    let seq = telemetry
        .traces()
        .iter()
        .filter(|t| t.stage == Stage::Raise && t.variant == RaiseVariant::ThreadSync)
        .map(|t| t.seq)
        .next_back()
        .expect("the sync raise left a Raise trace");
    let trace = telemetry.traces_for(seq);

    // Every lifecycle stage appears.
    let expected = [
        Stage::Raise,
        Stage::Route,
        Stage::Send,
        Stage::Deliver,
        Stage::ChainWalk,
        Stage::Unwind,
    ];
    for stage in expected {
        assert!(
            trace.iter().any(|t| t.stage == stage),
            "missing {stage:?} in {trace:?}"
        );
    }

    // Raise-side stages execute on node 0, delivery-side on node 1.
    for t in &trace {
        match t.stage {
            Stage::Raise | Stage::Route | Stage::Send => {
                assert_eq!(t.node, 0, "{:?} happens on the raising node", t.stage);
            }
            Stage::Deliver | Stage::ChainWalk => {
                assert_eq!(t.node, 1, "{:?} happens on the recipient node", t.stage);
            }
            Stage::Unwind => {}
        }
    }

    // First occurrence of each stage is non-decreasing in causal order:
    // all records share one cluster-wide monotonic epoch.
    let first = |stage: Stage| {
        trace
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.t_ns)
            .min()
            .unwrap()
    };
    let times: Vec<u64> = expected.iter().map(|&s| first(s)).collect();
    for pair in times.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "lifecycle timestamps ran backwards: {times:?}"
        );
    }

    // The sync raise also feeds the latency histogram and the delivery
    // accounting counters.
    let metrics = telemetry.metrics();
    assert!(metrics.counters.get("event.raises").copied().unwrap_or(0) >= 1);
    let requested = metrics
        .counters
        .get("delivery.requested")
        .copied()
        .unwrap_or(0);
    let delivered = metrics
        .counters
        .get("delivery.delivered")
        .copied()
        .unwrap_or(0);
    assert!(requested >= 1 && delivered >= 1);
    let hist = metrics
        .histograms
        .get("event.deliver_latency_ns")
        .expect("delivery latency histogram exists");
    assert!(hist.count >= 1, "remote delivery recorded its latency");

    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, tid)
        .wait();
    let _ = target.join_timeout(Duration::from_secs(5));
}
