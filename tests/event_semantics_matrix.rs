//! The conformance grid: the facility's core semantics must hold under
//! every combination of locator strategy, invocation mode, and
//! object-event execution policy — design goal 2 of the paper (§2)
//! generalized to every kernel configuration axis.

use doct::prelude::*;
use doct_events::EventFacility;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn configs() -> Vec<KernelConfig> {
    let mut out = Vec::new();
    for locator in [
        LocatorStrategy::Broadcast,
        LocatorStrategy::PathTrace,
        LocatorStrategy::Multicast,
    ] {
        for mode in [InvocationMode::Rpc, InvocationMode::Dsm] {
            for obj in [ObjectEventExecution::Master, ObjectEventExecution::Spawn] {
                out.push(KernelConfig {
                    locator,
                    invocation_mode: mode,
                    object_events: obj,
                    ..KernelConfig::default()
                });
            }
        }
    }
    out
}

fn build(config: KernelConfig) -> (Cluster, Arc<EventFacility>) {
    let cluster = Cluster::builder(3).config(config).build();
    let facility = EventFacility::install(&cluster);
    cluster.register_class(
        "plain",
        ClassBuilder::new("plain")
            .entry("sleepy", |ctx, args| {
                ctx.sleep(Duration::from_millis(args.as_int().unwrap_or(50) as u64))?;
                Ok(Value::Null)
            })
            .entry("where", |ctx, _| Ok(Value::Int(ctx.node_id().0 as i64)))
            .build(),
    );
    (cluster, facility)
}

#[test]
fn sync_raise_verdict_is_mode_independent() {
    for config in configs() {
        let (cluster, facility) = build(config);
        facility.register_event("ASK");
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(2)))
            .unwrap();
        let handle = cluster
            .spawn_fn(0, move |ctx| {
                ctx.attach_handler(
                    "ASK",
                    AttachSpec::proc("oracle", |_c, b| {
                        HandlerDecision::Resume(Value::Int(b.payload.as_int().unwrap_or(0) * 3))
                    }),
                );
                // Move into a remote object first; semantics must be
                // identical regardless of where the thread is.
                ctx.invoke(obj, "where", Value::Null)?;
                let me = ctx.thread_id();
                ctx.raise_and_wait("ASK", 14i64, me)
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), Value::Int(42), "{config:?}");
    }
}

#[test]
fn terminate_mid_remote_sleep_works_everywhere() {
    for config in configs() {
        let (cluster, _facility) = build(config);
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(1)))
            .unwrap();
        let handle = cluster.spawn(0, obj, "sleepy", Value::Int(30_000)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let summary = cluster
            .raise_from(2, SystemEvent::Terminate, Value::Null, handle.thread())
            .wait();
        assert_eq!(summary.delivered, 1, "{config:?}: {summary:?}");
        let r = handle
            .join_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("{config:?}: thread stuck"));
        assert!(
            matches!(r, Err(KernelError::Terminated)),
            "{config:?}: {r:?}"
        );
        assert!(
            cluster.await_quiescence(Duration::from_secs(10)),
            "{config:?}: orphans"
        );
    }
}

#[test]
fn object_events_fire_everywhere() {
    for config in configs() {
        let (cluster, facility) = build(config);
        let poke = facility.register_event("POKE");
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(1)))
            .unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        facility
            .on_object_event(&cluster, obj, poke.clone(), move |_c, _o, _b| {
                h.fetch_add(1, Ordering::Relaxed);
                HandlerDecision::Resume(Value::Null)
            })
            .unwrap();
        for _ in 0..5 {
            cluster.raise_from(0, poke.clone(), Value::Null, obj).wait();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 5, "{config:?}");
    }
}

#[test]
fn stationary_thread_delivery_is_exactly_once() {
    // For a stationary target every locator must deliver each event
    // exactly once (moving targets may see duplicates under broadcast —
    // the §7.1 imprecision; see DESIGN.md).
    for config in configs() {
        let (cluster, facility) = build(config);
        facility.register_event("TICK");
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let target = cluster
            .spawn_fn(1, move |ctx| {
                ctx.attach_handler(
                    "TICK",
                    AttachSpec::proc("count", move |_c, _b| {
                        h.fetch_add(1, Ordering::Relaxed);
                        HandlerDecision::Resume(Value::Null)
                    }),
                );
                ctx.sleep(Duration::from_secs(60))?;
                Ok(Value::Null)
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..20 {
            let s = cluster
                .raise_from(2, EventName::user("TICK"), Value::Null, target.thread())
                .wait();
            assert_eq!(s.delivered, 1, "{config:?}");
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 20 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            hits.load(Ordering::Relaxed),
            20,
            "{config:?}: not exactly-once"
        );
        cluster
            .raise_from(0, SystemEvent::Quit, Value::Null, target.thread())
            .wait();
        let _ = target.join_timeout(Duration::from_secs(5));
    }
}
