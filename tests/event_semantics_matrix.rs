//! The conformance grid: the facility's core semantics must hold under
//! every combination of locator strategy, invocation mode, and
//! object-event execution policy — design goal 2 of the paper (§2)
//! generalized to every kernel configuration axis.

use doct::prelude::*;
use doct_events::EventFacility;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn configs() -> Vec<KernelConfig> {
    let mut out = Vec::new();
    for locator in [
        LocatorStrategy::Broadcast,
        LocatorStrategy::PathTrace,
        LocatorStrategy::Multicast,
    ] {
        for mode in [InvocationMode::Rpc, InvocationMode::Dsm] {
            for obj in [ObjectEventExecution::Master, ObjectEventExecution::Spawn] {
                out.push(KernelConfig {
                    locator,
                    invocation_mode: mode,
                    object_events: obj,
                    ..KernelConfig::default()
                });
            }
        }
    }
    out
}

fn build(config: KernelConfig) -> (Cluster, Arc<EventFacility>) {
    let cluster = Cluster::builder(3).config(config).build();
    let facility = EventFacility::install(&cluster);
    cluster.register_class(
        "plain",
        ClassBuilder::new("plain")
            .entry("sleepy", |ctx, args| {
                ctx.sleep(Duration::from_millis(args.as_int().unwrap_or(50) as u64))?;
                Ok(Value::Null)
            })
            .entry("where", |ctx, _| Ok(Value::Int(ctx.node_id().0 as i64)))
            .build(),
    );
    (cluster, facility)
}

/// The §5.3 table, checked through the telemetry trace ring: each of the
/// six raise variants must leave a `Raise` record tagged with its variant,
/// and its `Deliver` records must land on exactly the expected recipient
/// nodes. Blocking (`raise_and_wait`) variants must additionally show the
/// `Unwind` ack before the raiser observes the verdict.
#[test]
fn telemetry_traces_the_six_raise_variants() {
    use doct_telemetry::{RaiseVariant, Stage};
    use std::collections::BTreeSet;

    let (cluster, facility) = build(KernelConfig::default());
    let ev = facility.register_event("VAR");

    // Recipients: a thread on node 1, a 3-member group on nodes 0..2, and
    // an object homed on node 2 — all with resuming handlers.
    let target = cluster
        .spawn_fn(1, {
            let ev = ev.clone();
            move |ctx| {
                ctx.attach_handler(
                    ev,
                    AttachSpec::proc("t", |_c, _b| HandlerDecision::Resume(Value::Int(7))),
                );
                ctx.sleep(Duration::from_secs(120))?;
                Ok(Value::Null)
            }
        })
        .unwrap();
    let group = cluster.create_group();
    for node in 0..3usize {
        let ev = ev.clone();
        cluster
            .spawn_fn_with(
                node,
                SpawnOptions {
                    group: Some(group),
                    ..Default::default()
                },
                move |ctx| {
                    ctx.attach_handler(
                        ev,
                        AttachSpec::proc("g", |_c, _b| HandlerDecision::Resume(Value::Int(8))),
                    );
                    ctx.sleep(Duration::from_secs(120))?;
                    Ok(Value::Null)
                },
            )
            .unwrap();
    }
    let object = cluster
        .create_object(ObjectConfig::new("plain", NodeId(2)))
        .unwrap();
    facility
        .on_object_event(&cluster, object, ev.clone(), |_c, _o, _b| {
            HandlerDecision::Resume(Value::Int(9))
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let telemetry = Arc::clone(cluster.telemetry());
    // The raise-side `seq` is internal, so recover it from the ring: the
    // one Raise record carrying this variant.
    let raise_record = |variant: RaiseVariant| {
        telemetry
            .traces()
            .into_iter()
            .rfind(|t| t.stage == Stage::Raise && t.variant == variant)
            .unwrap_or_else(|| panic!("no Raise trace for {variant:?}"))
    };
    let deliver_nodes = |seq: u64, expected: usize| -> BTreeSet<u64> {
        // Deliveries may trail the raiser's return for object events;
        // poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let nodes: BTreeSet<u64> = telemetry
                .traces_for(seq)
                .iter()
                .filter(|t| t.stage == Stage::Deliver)
                .map(|t| t.node)
                .collect();
            if nodes.len() >= expected || std::time::Instant::now() >= deadline {
                return nodes;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    // Async half of the table: raise(e,tid) / raise(e,gtid) / raise(e,oid).
    let s = cluster
        .raise_from(0, ev.clone(), Value::Null, target.thread())
        .wait();
    assert_eq!(s.delivered, 1);
    let r = raise_record(RaiseVariant::ThreadAsync);
    assert_eq!(r.node, 0, "raise(e,tid) raised from node 0");
    assert!(!r.variant.is_sync());
    assert_eq!(
        deliver_nodes(r.seq, 1),
        BTreeSet::from([1]),
        "raise(e,tid) delivers to thread tid's node only"
    );

    let s = cluster
        .raise_from(0, ev.clone(), Value::Null, RaiseTarget::Group(group))
        .wait();
    assert_eq!(s.delivered, 3);
    let r = raise_record(RaiseVariant::GroupAsync);
    assert_eq!(
        deliver_nodes(r.seq, 3),
        BTreeSet::from([0, 1, 2]),
        "raise(e,gtid) delivers to every member's node"
    );

    let _ = cluster
        .raise_from(1, ev.clone(), Value::Null, object)
        .wait();
    let r = raise_record(RaiseVariant::ObjectAsync);
    assert_eq!(r.node, 1);
    assert_eq!(
        deliver_nodes(r.seq, 1),
        BTreeSet::from([2]),
        "raise(e,oid) delivers at the object's home node"
    );

    // Blocking half: raise_and_wait against the same three targets, from
    // a thread on node 0. The verdict proves the raiser blocked for the
    // handler; the Unwind trace is the ack that released it.
    let tid = target.thread();
    let ev2 = ev.clone();
    cluster
        .spawn_fn(0, move |ctx| {
            assert_eq!(
                ctx.raise_and_wait(ev2.clone(), Value::Null, tid)?,
                Value::Int(7)
            );
            let g = ctx.raise_and_wait(ev2.clone(), Value::Null, RaiseTarget::Group(group))?;
            assert!(!g.is_null(), "group sync raise returns a verdict");
            assert_eq!(ctx.raise_and_wait(ev2, Value::Null, object)?, Value::Int(9));
            Ok(Value::Null)
        })
        .unwrap()
        .join()
        .unwrap();

    for (variant, expected_nodes) in [
        (RaiseVariant::ThreadSync, BTreeSet::from([1])),
        (RaiseVariant::GroupSync, BTreeSet::from([0, 1, 2])),
        (RaiseVariant::ObjectSync, BTreeSet::from([2])),
    ] {
        let r = raise_record(variant);
        assert!(r.variant.is_sync());
        assert_eq!(r.node, 0, "{variant:?} raised from node 0");
        assert_eq!(
            deliver_nodes(r.seq, expected_nodes.len()),
            expected_nodes,
            "{variant:?} recipient set"
        );
        let stages: Vec<Stage> = telemetry
            .traces_for(r.seq)
            .iter()
            .map(|t| t.stage)
            .collect();
        assert!(
            stages.contains(&Stage::Unwind),
            "{variant:?}: blocking raise must record the Unwind ack, got {stages:?}"
        );
    }
}

#[test]
fn sync_raise_verdict_is_mode_independent() {
    for config in configs() {
        let (cluster, facility) = build(config);
        facility.register_event("ASK");
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(2)))
            .unwrap();
        let handle = cluster
            .spawn_fn(0, move |ctx| {
                ctx.attach_handler(
                    "ASK",
                    AttachSpec::proc("oracle", |_c, b| {
                        HandlerDecision::Resume(Value::Int(b.payload.as_int().unwrap_or(0) * 3))
                    }),
                );
                // Move into a remote object first; semantics must be
                // identical regardless of where the thread is.
                ctx.invoke(obj, "where", Value::Null)?;
                let me = ctx.thread_id();
                ctx.raise_and_wait("ASK", 14i64, me)
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), Value::Int(42), "{config:?}");
    }
}

#[test]
fn terminate_mid_remote_sleep_works_everywhere() {
    for config in configs() {
        let (cluster, _facility) = build(config);
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(1)))
            .unwrap();
        let handle = cluster.spawn(0, obj, "sleepy", Value::Int(30_000)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let summary = cluster
            .raise_from(2, SystemEvent::Terminate, Value::Null, handle.thread())
            .wait();
        assert_eq!(summary.delivered, 1, "{config:?}: {summary:?}");
        let r = handle
            .join_timeout(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("{config:?}: thread stuck"));
        assert!(
            matches!(r, Err(KernelError::Terminated)),
            "{config:?}: {r:?}"
        );
        assert!(
            cluster.await_quiescence(Duration::from_secs(10)),
            "{config:?}: orphans"
        );
    }
}

#[test]
fn object_events_fire_everywhere() {
    for config in configs() {
        let (cluster, facility) = build(config);
        let poke = facility.register_event("POKE");
        let obj = cluster
            .create_object(ObjectConfig::new("plain", NodeId(1)))
            .unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        facility
            .on_object_event(&cluster, obj, poke.clone(), move |_c, _o, _b| {
                h.fetch_add(1, Ordering::Relaxed);
                HandlerDecision::Resume(Value::Null)
            })
            .unwrap();
        for _ in 0..5 {
            let _ = cluster.raise_from(0, poke.clone(), Value::Null, obj).wait();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 5, "{config:?}");
    }
}

#[test]
fn stationary_thread_delivery_is_exactly_once() {
    // For a stationary target every locator must deliver each event
    // exactly once (moving targets may see duplicates under broadcast —
    // the §7.1 imprecision; see DESIGN.md).
    for config in configs() {
        let (cluster, facility) = build(config);
        facility.register_event("TICK");
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let target = cluster
            .spawn_fn(1, move |ctx| {
                ctx.attach_handler(
                    "TICK",
                    AttachSpec::proc("count", move |_c, _b| {
                        h.fetch_add(1, Ordering::Relaxed);
                        HandlerDecision::Resume(Value::Null)
                    }),
                );
                ctx.sleep(Duration::from_secs(60))?;
                Ok(Value::Null)
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..20 {
            let s = cluster
                .raise_from(2, EventName::user("TICK"), Value::Null, target.thread())
                .wait();
            assert_eq!(s.delivered, 1, "{config:?}");
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 20 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            hits.load(Ordering::Relaxed),
            20,
            "{config:?}: not exactly-once"
        );
        let _ = cluster
            .raise_from(0, SystemEvent::Quit, Value::Null, target.thread())
            .wait();
        let _ = target.join_timeout(Duration::from_secs(5));
    }
}
