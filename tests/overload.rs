//! Overload-control integration tests: bounded priority mailboxes under
//! saturation (ROADMAP item 5, the E13 companion suite).
//!
//! Contracts under test:
//!
//! * **Control preemption** — a TIMER flood of 10⁴ raises never delays a
//!   concurrent TERMINATE past its deadline: the control lane is
//!   unbounded, unsheddable, and pops first at every delivery point.
//! * **Typed shedding** — a raise refused by a full lane resolves as
//!   `DeliveryStatus::Overloaded` in the raise summary and the
//!   `delivery.overloaded` counter. Nothing is silently dropped.
//! * **Backpressure** — an `Overloaded` receipt marks the peer pressured;
//!   while the hold lasts, sheddable raises toward it shed *at the
//!   source* (no wire traffic), while control raises still go through.
//! * **Ledger under chaos** — with deliberately tiny lane bounds and
//!   flooding workers, the five-term delivery ledger
//!   (requested = delivered + dead + timeout + lost + overloaded)
//!   balances on every seed, with real shedding observed.
//!
//! Seeds derive from `DOCT_SEED` (soak.rs convention) so failures replay.

use doct::prelude::*;
use doct_events::EventFacility;
use doct_kernel::{ClusterBuilder, KernelConfig, MailboxConfig, SpawnOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Base seed for the chaos rounds: `DOCT_SEED` if set, else fixed.
fn base_seed() -> u64 {
    match std::env::var("DOCT_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("DOCT_SEED must be a u64, got {s:?}")),
        Err(_) => 0x0E13_5EED,
    }
}

fn counter(cluster: &Cluster, name: &str) -> u64 {
    cluster
        .telemetry()
        .metrics()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// Five-term ledger: every tracked raise resolved, sheds included.
fn assert_ledger_balances(cluster: &Cluster) {
    let requested = counter(cluster, "delivery.requested");
    let delivered = counter(cluster, "delivery.delivered");
    let dead = counter(cluster, "delivery.dead");
    let timeout = counter(cluster, "delivery.timeout");
    let lost = counter(cluster, "delivery.lost");
    let overloaded = counter(cluster, "delivery.overloaded");
    assert_eq!(
        requested,
        delivered + dead + timeout + lost + overloaded,
        "ledger out of balance: requested {requested} != delivered {delivered} \
         + dead {dead} + timeout {timeout} + lost {lost} + overloaded {overloaded}"
    );
}

#[test]
fn timer_flood_never_delays_terminate_past_deadline() {
    // A small TIMER lane so the 10⁴-raise flood genuinely saturates it.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig::default().with_mailbox(MailboxConfig {
            timer_capacity: 64,
            ..MailboxConfig::default()
        }))
        .build();

    // The victim spins without touching a delivery point while the flood
    // lands (so its mailbox fills and sheds), then starts draining.
    let draining = Arc::new(AtomicBool::new(false));
    let d = Arc::clone(&draining);
    let victim = cluster
        .spawn_fn(0, move |ctx| {
            while !d.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            loop {
                ctx.compute(100)?;
                ctx.poll_events()?;
            }
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    for _ in 0..10_000 {
        cluster
            .raise_from(0, SystemEvent::Timer, Value::Null, victim.thread())
            .detach();
    }
    assert!(
        counter(&cluster, "kernel.shed_total") > 0,
        "10^4 raises against a 64-slot lane must shed"
    );
    assert!(
        counter(&cluster, "kernel.shed_timer") > 0,
        "the sheds must be attributed to the TIMER lane"
    );

    // Let the victim start chewing through the backlog, then kill it. The
    // TERMINATE must preempt every queued timer, not wait behind them.
    draining.store(true, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(20));
    let summary = cluster
        .raise_from(1, SystemEvent::Terminate, Value::Null, victim.thread())
        .wait();
    assert_eq!(summary.delivered, 1, "control is never shed: {summary:?}");
    assert_eq!(summary.overloaded, 0, "{summary:?}");
    // The bounded join IS the deadline: with ~10⁴ queued timers at 100
    // compute-units each, draining the backlog first would blow well past
    // it — the control lane must preempt for this to return in time.
    let r = victim
        .join_timeout(Duration::from_secs(5))
        .expect("TERMINATE delayed past deadline by the flood");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");

    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

#[test]
fn shed_raises_resolve_as_typed_overloaded() {
    // Lane bound of one: the first raise is stored, the rest are shed
    // while the victim (which never reaches a delivery point) sits on it.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig::default().with_mailbox(MailboxConfig {
            timer_capacity: 1,
            user_capacity: 1,
            ..MailboxConfig::default()
        }))
        .build();
    let stop = Arc::new(AtomicBool::new(false));
    let s = Arc::clone(&stop);
    let victim = cluster
        .spawn_fn(1, move |_ctx| {
            while !s.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut delivered = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..5 {
        let summary = cluster
            .raise_from(0, SystemEvent::Timer, Value::Null, victim.thread())
            .wait();
        assert_eq!(
            summary.delivered + summary.overloaded,
            1,
            "every raise resolves as exactly one typed outcome: {summary:?}"
        );
        assert!(
            !summary.all_delivered() || summary.overloaded == 0,
            "an Overloaded summary must not claim full delivery: {summary:?}"
        );
        delivered += summary.delivered;
        overloaded += summary.overloaded;
    }
    assert_eq!(delivered, 1, "the single lane slot admits exactly one");
    assert_eq!(overloaded, 4, "the rest must be typed Overloaded, not lost");
    assert_eq!(counter(&cluster, "delivery.overloaded"), 4);
    assert!(counter(&cluster, "kernel.shed_total") >= 1);

    stop.store(true, Ordering::Relaxed);
    let _ = victim.join_timeout(Duration::from_secs(5));
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

#[test]
fn backpressure_sheds_at_the_source_but_control_passes() {
    let cluster = ClusterBuilder::new(2).build();
    let victim = cluster
        .spawn_fn(1, |ctx| loop {
            ctx.sleep(Duration::from_millis(2))?;
            ctx.poll_events()?;
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // First raise delivers normally and seeds node 0's location hint for
    // the victim — the pressured fast-path consults that hint.
    let summary = cluster
        .raise_from(0, SystemEvent::Timer, Value::Null, victim.thread())
        .wait();
    assert_eq!(summary.delivered, 1, "{summary:?}");

    // Simulate the Overloaded-receipt signal: node 1 is pressured. A
    // sheddable raise toward it now sheds at the source — typed, no wire.
    cluster
        .net()
        .note_backpressure(NodeId(1), Duration::from_secs(30));
    let summary = cluster
        .raise_from(0, SystemEvent::Timer, Value::Null, victim.thread())
        .wait();
    assert_eq!(summary.overloaded, 1, "{summary:?}");
    assert_eq!(summary.delivered, 0, "{summary:?}");
    assert!(
        counter(&cluster, "kernel.shed_at_source") >= 1,
        "the shed must happen on the raising node"
    );

    // Control traffic ignores the pressure: TERMINATE still goes through.
    let summary = cluster
        .raise_from(0, SystemEvent::Terminate, Value::Null, victim.thread())
        .wait();
    assert_eq!(
        summary.delivered, 1,
        "control must pass a pressured link: {summary:?}"
    );
    let r = victim
        .join_timeout(Duration::from_secs(10))
        .expect("victim must terminate");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");

    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

/// One chaos round: flooding workers plus never-draining sinks under tiny
/// lane bounds, on `reactors` kernel workers per node. Returns with the
/// ledger checked and shedding confirmed.
fn chaos_round(seed: u64, reactors: usize) {
    const NODES: usize = 3;
    const WORKERS: usize = 6;
    let cluster = ClusterBuilder::new(NODES)
        .config(
            KernelConfig::default()
                .with_reactors(reactors)
                .with_mailbox(MailboxConfig {
                    timer_capacity: 2,
                    user_capacity: 2,
                    ..MailboxConfig::default()
                }),
        )
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("NUDGE");
    let stop = Arc::new(AtomicBool::new(false));
    let nudges = Arc::new(AtomicU64::new(0));

    // One sink per node: spins without delivery points, so raises at it
    // queue until the tiny lanes fill, then shed.
    let sinks: Vec<_> = (0..NODES)
        .map(|n| {
            let s = Arc::clone(&stop);
            cluster
                .spawn_fn(n, move |_ctx| {
                    while !s.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(Value::Null)
                })
                .unwrap()
        })
        .collect();
    let sink_threads: Vec<ThreadId> = sinks.iter().map(|h| h.thread()).collect();

    let group = cluster.create_group();
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let stop = Arc::clone(&stop);
        let nudges = Arc::clone(&nudges);
        let sink_threads = sink_threads.clone();
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        workers.push(
            cluster
                .spawn_fn_with(w % NODES, opts, move |ctx| {
                    let n = Arc::clone(&nudges);
                    ctx.attach_handler(
                        "NUDGE",
                        doct_events::AttachSpec::proc("nudge", move |_c, _b| {
                            n.fetch_add(1, Ordering::Relaxed);
                            doct_events::HandlerDecision::Resume(Value::Null)
                        }),
                    );
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
                    let mut siblings: Vec<ThreadId> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        match rng.gen_range(0..4) {
                            0 => {
                                // Burst at a sink: guaranteed saturation.
                                let t = sink_threads[rng.gen_range(0..sink_threads.len())];
                                for _ in 0..8 {
                                    ctx.raise("NUDGE", Value::Null, t).detach();
                                }
                            }
                            1 => {
                                // Nudge a draining sibling: mostly lands.
                                if siblings.is_empty() {
                                    siblings = ctx
                                        .kernel()
                                        .groups()
                                        .members(ctx.attributes().group.expect("in group"));
                                }
                                if let Some(&t) = siblings.get(rng.gen_range(0..siblings.len())) {
                                    ctx.raise("NUDGE", Value::Null, t).detach();
                                }
                            }
                            2 => {
                                let t = sink_threads[rng.gen_range(0..sink_threads.len())];
                                ctx.raise(SystemEvent::Timer, Value::Null, t).detach();
                            }
                            _ => ctx.compute(rng.gen_range(100..2_000))?,
                        }
                        ctx.poll_events()?;
                    }
                    Ok(Value::Null)
                })
                .unwrap(),
        );
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in workers {
        match h.join_timeout(Duration::from_secs(15)) {
            Some(Ok(_)) => {}
            Some(Err(e)) => panic!("seed {seed}: worker failed: {e}"),
            None => panic!("seed {seed}: worker hung"),
        }
    }
    for h in sinks {
        assert!(h.join_timeout(Duration::from_secs(15)).is_some());
    }
    assert!(
        cluster.await_quiescence(Duration::from_secs(10)),
        "seed {seed}: orphans"
    );

    // Give in-flight detached raises a moment to resolve, then check the
    // books: everything typed, sheds real, traffic real.
    let requested = counter(&cluster, "delivery.requested");
    assert!(requested > 0, "seed {seed}: no tracked raises");
    assert!(
        counter(&cluster, "kernel.shed_total") > 0,
        "seed {seed}: chaos round shed nothing — bounds not exercised"
    );
    assert!(
        counter(&cluster, "delivery.overloaded") > 0,
        "seed {seed}: sheds must surface in the delivery ledger"
    );
    assert_ledger_balances(&cluster);
    assert!(
        nudges.load(Ordering::Relaxed) > 0,
        "seed {seed}: no events actually handled"
    );
}

#[test]
fn ledger_balances_under_three_seed_chaos_with_shedding() {
    let base = base_seed();
    for offset in 0..3 {
        chaos_round(base.wrapping_add(offset), 1);
    }
}

/// The same chaos, but with the kernel loop split into work-stealing
/// reactors: typed shedding and the five-term ledger must be exactly as
/// balanced when receipts, sweeps, and steals race across shards as when
/// one thread handles everything inline.
#[test]
fn ledger_balances_under_chaos_with_multi_reactor_kernels() {
    let base = base_seed();
    for reactors in [2usize, 4] {
        for offset in 0..3 {
            chaos_round(base.wrapping_add(offset), reactors);
        }
    }
}
