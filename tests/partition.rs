//! Partition-tolerance integration tests: what the delivery ledger and
//! raise summaries report when links are cut mid-traffic, when they heal,
//! and when a tracking kernel disappears with receipts still in flight.
//!
//! Three contracts under test:
//!
//! * A multicast-located group member on an isolated island must *not*
//!   count as delivered — and a later `heal()` must not replay the event
//!   to it.
//! * With the reliability layer on, a partition shorter than the
//!   retransmit tail is invisible: queued locate probes cross the healed
//!   link and the member is delivered after all.
//! * A kernel that shuts down with deliveries in flight resolves them as
//!   `lost` (counted by `delivery.lost`), never as a fake timeout — the
//!   ledger still balances.

use doct::prelude::*;
use doct_kernel::{
    ClassBuilder, ClusterBuilder, KernelConfig, LocatorStrategy, RaiseTarget, SpawnOptions,
    ThreadAttributes,
};
use doct_net::{FailureConfig, PeerState, ReliabilityConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tight reliability tuning so retransmits and heartbeats happen within
/// test-sized windows.
fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        max_retries: 60,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: Duration::from_millis(2),
        tick: Duration::from_millis(2),
        heartbeat_interval: Duration::from_millis(5),
        dedupe_window: 1024,
        ..ReliabilityConfig::default()
    }
}

fn delivery_counters(cluster: &Cluster) -> (u64, u64, u64, u64, u64, u64) {
    let counters = cluster.telemetry().metrics().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    (
        get("delivery.requested"),
        get("delivery.delivered"),
        get("delivery.dead"),
        get("delivery.timeout"),
        get("delivery.lost"),
        get("delivery.overloaded"),
    )
}

fn assert_ledger_balances(cluster: &Cluster) {
    let (requested, delivered, dead, timeout, lost, overloaded) = delivery_counters(cluster);
    assert_eq!(
        requested,
        delivered + dead + timeout + lost + overloaded,
        "ledger out of balance: requested {requested} != delivered {delivered} \
         + dead {dead} + timeout {timeout} + lost {lost} + overloaded {overloaded}"
    );
}

/// Spawn a sleeper thread in `group` on `node`; it parks at delivery
/// points long enough for the test to raise at it.
fn spawn_sleeper(
    cluster: &Cluster,
    node: usize,
    group: ThreadGroupId,
    ms: u64,
) -> doct_kernel::ThreadHandle {
    let opts = SpawnOptions {
        group: Some(group),
        ..Default::default()
    };
    cluster
        .spawn_fn_with(node, opts, move |ctx| {
            ctx.sleep(Duration::from_millis(ms))?;
            Ok(Value::Null)
        })
        .unwrap()
}

#[test]
fn isolated_multicast_member_is_not_delivered_and_heal_replays_nothing() {
    let cluster = ClusterBuilder::new(3)
        .config(KernelConfig {
            locator: LocatorStrategy::Multicast,
            delivery_timeout: Duration::from_millis(400),
            delivery_retries: 1,
            ..KernelConfig::default()
        })
        .build();
    let group = cluster.create_group();
    let reachable = spawn_sleeper(&cluster, 1, group, 900);
    let islanded = spawn_sleeper(&cluster, 2, group, 900);
    std::thread::sleep(Duration::from_millis(60));

    cluster.net().isolate(&[NodeId(2)]).unwrap();
    let summary = cluster
        .raise_from(
            0,
            SystemEvent::Timer,
            Value::Null,
            RaiseTarget::Group(group),
        )
        .wait();
    assert_eq!(summary.delivered, 1, "{summary:?}");
    assert_eq!(
        summary.nodes,
        vec![NodeId(1)],
        "the islanded member must not appear among delivery nodes"
    );
    assert_eq!(
        summary.delivered + summary.dead + summary.timed_out + summary.lost + summary.overloaded,
        2,
        "both members accounted for: {summary:?}"
    );

    // Heal and give any (wrong) replay machinery ample time: best-effort
    // transport retries nothing, so the delivered count must not move.
    let delivered_before = delivery_counters(&cluster).1;
    cluster.net().heal();
    std::thread::sleep(Duration::from_millis(500));
    let delivered_after = delivery_counters(&cluster).1;
    assert_eq!(
        delivered_before, delivered_after,
        "heal() must not replay the event to the islanded member"
    );

    let _ = reachable.join_timeout(Duration::from_secs(5));
    let _ = islanded.join_timeout(Duration::from_secs(5));
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

#[test]
fn reliable_transport_delivers_to_member_across_transient_partition() {
    // Same shape as above, but with the reliability layer on and the
    // partition healed inside the retransmit window: the queued locate
    // probe crosses the healed link and the member IS delivered.
    let cluster = ClusterBuilder::new(3)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(5),
            ..KernelConfig::default()
        })
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    let group = cluster.create_group();
    let near = spawn_sleeper(&cluster, 1, group, 1_500);
    let far = spawn_sleeper(&cluster, 2, group, 1_500);
    std::thread::sleep(Duration::from_millis(60));

    cluster.net().isolate(&[NodeId(2)]).unwrap();
    let ticket = cluster.raise_from(
        0,
        SystemEvent::Timer,
        Value::Null,
        RaiseTarget::Group(group),
    );
    std::thread::sleep(Duration::from_millis(100));
    cluster.net().heal();
    let summary = ticket.wait();
    assert_eq!(
        summary.delivered, 2,
        "retransmits must carry the probe across the heal: {summary:?}"
    );
    assert!(summary.all_delivered(), "{summary:?}");
    assert!(
        cluster.net().stats().retransmits() > 0,
        "delivery crossed the partition without retransmitting?"
    );

    let _ = near.join_timeout(Duration::from_secs(5));
    let _ = far.join_timeout(Duration::from_secs(5));
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

#[test]
fn batch_straddling_a_partition_heal_is_not_double_delivered() {
    // Three co-located group members make the probe wave a single
    // BatchEnvelope (one seq, one wire hop). The ack/receipt path back to
    // the raiser is cut, so the batch is retransmitted across the heal —
    // the duplicate must be suppressed whole and every member delivered
    // exactly once.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(5),
            ..KernelConfig::default()
        })
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    let group = cluster.create_group();
    let sleepers: Vec<_> = (0..3)
        .map(|_| spawn_sleeper(&cluster, 1, group, 1_500))
        .collect();
    std::thread::sleep(Duration::from_millis(60));

    // Probes flow 0 -> 1; acks and receipts are lost on the cut reverse
    // path, so the probe batch keeps retransmitting until the heal.
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), false)
        .unwrap();
    let ticket = cluster.raise_from(
        0,
        SystemEvent::Timer,
        Value::Null,
        RaiseTarget::Group(group),
    );
    std::thread::sleep(Duration::from_millis(150));
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), true)
        .unwrap();
    let summary = ticket.wait();

    assert!(
        cluster.net().stats().batches_sent() > 0,
        "three co-destined probes must ride a batch"
    );
    assert!(
        cluster.net().stats().dup_drops() > 0,
        "the unacked batch must have been retransmitted and suppressed"
    );
    assert_eq!(summary.delivered, 3, "{summary:?}");
    assert!(summary.all_delivered(), "{summary:?}");

    // Exactly-once: the delivered count must not move after the dust
    // settles — a replayed batch would inflate it.
    let delivered_before = delivery_counters(&cluster).1;
    std::thread::sleep(Duration::from_millis(300));
    let delivered_after = delivery_counters(&cluster).1;
    assert_eq!(
        delivered_before, delivered_after,
        "retransmitted batch must not re-deliver to any member"
    );

    for s in sleepers {
        let _ = s.join_timeout(Duration::from_secs(5));
    }
    assert!(cluster.await_quiescence(Duration::from_secs(5)));
    assert_ledger_balances(&cluster);
}

#[test]
fn dead_peer_call_fails_within_a_heartbeat_not_a_poll_slice() {
    // A remote invocation is in flight when the target node goes silent.
    // The death watcher must wake the caller the moment the failure
    // detector's verdict lands — the old implementation polled the peer
    // state in 20ms slices, quantizing the resolution latency; the fix
    // drops the caller's reply sender from the heartbeat thread, so the
    // blocked recv wakes in sub-slice time.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            invoke_timeout: Duration::from_secs(30),
            ..KernelConfig::default()
        })
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(30),
                dead_after: Duration::from_millis(80),
            },
        )
        .build();
    cluster.register_class(
        "blackhole",
        ClassBuilder::new("blackhole")
            .entry("swallow", |_ctx, _args| Ok(Value::Null))
            .build(),
    );
    let obj = cluster
        .create_object(doct_kernel::ObjectConfig::new("blackhole", NodeId(1)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));

    // Timestamp the dead verdict from a 1ms-granularity observer so the
    // caller's wake latency is measured from the verdict, not the cut.
    cluster.net().isolate(&[NodeId(1)]).unwrap();
    let verdict_watch = std::thread::spawn({
        let net = Arc::clone(cluster.net());
        move || loop {
            if net.peer_state(NodeId(0), NodeId(1)) == Some(PeerState::Dead) {
                return Instant::now();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    let attrs = ThreadAttributes::new(ThreadId::new(NodeId(0), 9_001), NodeId(0));
    let err = cluster
        .kernel(0)
        .call_remote(NodeId(1), obj, "swallow", Value::Null, attrs, 0)
        .expect_err("an isolated peer must fail the call");
    let failed_at = Instant::now();
    assert!(
        matches!(err, KernelError::NodeUnreachable(NodeId(1))),
        "want NodeUnreachable, got {err:?}"
    );

    let dead_at = verdict_watch.join().expect("verdict watcher");
    let wake_latency = failed_at.saturating_duration_since(dead_at);
    assert!(
        wake_latency < Duration::from_millis(20),
        "caller woke {wake_latency:?} after the dead verdict — \
         that is poll-slice latency, not a death-watcher wake"
    );
    let counters = cluster.telemetry().metrics().counters;
    assert!(
        counters
            .get("kernel.calls_failed_fast")
            .copied()
            .unwrap_or(0)
            >= 1,
        "the fast-fail path must account the dropped call"
    );

    cluster.net().heal();
}

#[test]
fn steal_mid_partition_heal_keeps_the_ledger_balanced() {
    // Four reactors per kernel; every probe for one sink thread routes to
    // the same reactor, so the post-heal burst floods that reactor's
    // queue until a neighbour is invited to steal. The five-term ledger
    // must balance exactly even with receipts, sweeps, and steals racing
    // across the shards.
    let cluster = ClusterBuilder::new(2)
        .config(
            KernelConfig {
                delivery_timeout: Duration::from_secs(5),
                ..KernelConfig::default()
            }
            .with_reactors(4),
        )
        .reliable_with(
            fast_reliability(),
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    let stop = Arc::new(AtomicBool::new(false));
    let s = Arc::clone(&stop);
    let sink = cluster
        .spawn_fn(1, move |_ctx| {
            while !s.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(60));

    let steals = || {
        cluster
            .telemetry()
            .metrics()
            .counters
            .get("kernel.reactor_steals")
            .copied()
            .unwrap_or(0)
    };
    // Partition, burst raises into the retransmit queue, heal: the queued
    // probes arrive at node 1 as one surge. Retry the round until a steal
    // is actually observed (scheduling-dependent, usually round one).
    for _attempt in 0..10 {
        cluster.net().isolate(&[NodeId(1)]).unwrap();
        let tickets: Vec<_> = (0..200)
            .map(|_| cluster.raise_from(0, SystemEvent::Timer, Value::Null, sink.thread()))
            .collect();
        std::thread::sleep(Duration::from_millis(40));
        cluster.net().heal();
        for t in tickets {
            let _ = t.wait();
        }
        if steals() > 0 {
            break;
        }
    }
    assert!(
        steals() > 0,
        "a 4-reactor kernel must steal under a single-target surge"
    );

    stop.store(true, Ordering::Relaxed);
    let _ = sink.join_timeout(Duration::from_secs(5));
    assert!(cluster.await_quiescence(Duration::from_secs(10)));
    assert_ledger_balances(&cluster);
}

#[test]
fn kernel_shutdown_mid_raise_resolves_receipts_as_lost() {
    // The receipt path (node 1 -> node 0) is cut one-way, so the probe
    // delivers but its receipt never returns; the tracker on node 0 stays
    // pending. Shutting node 0's kernel down must resolve it as Lost —
    // not leave the waiter hanging, not fake a timeout.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(10),
            ..KernelConfig::default()
        })
        .build();
    let group = cluster.create_group();
    let sleeper = spawn_sleeper(&cluster, 1, group, 600);
    std::thread::sleep(Duration::from_millis(60));

    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), false)
        .unwrap();
    let ticket = cluster.raise_from(0, SystemEvent::Timer, Value::Null, sleeper.thread());
    std::thread::sleep(Duration::from_millis(100));
    cluster.kernel(0).request_shutdown();

    let start = std::time::Instant::now();
    let summary = ticket.wait();
    assert_eq!(summary.lost, 1, "{summary:?}");
    assert_eq!(summary.delivered, 0, "{summary:?}");
    assert_eq!(summary.timed_out, 0, "lost must not masquerade as timeout");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown drain must resolve the waiter promptly, took {:?}",
        start.elapsed()
    );

    let (_, _, _, _, lost, _) = delivery_counters(&cluster);
    assert_eq!(lost, 1, "delivery.lost must record the drained tracker");
    assert_ledger_balances(&cluster);

    cluster.net().heal();
    let _ = sleeper.join_timeout(Duration::from_secs(5));
}
