//! Lock-order regression test: drives a representative multi-node
//! workload (raises, remote invokes, group fan-out, a QUIT drain) and
//! asserts the lockdep instrumentation observed **zero** lock-order
//! cycles and **zero** lock-held-across-blocking-call violations.
//!
//! Without `--features parking_lot/lockdep` the counters are hard zeros
//! and the assertions are vacuous; CI runs this test with the feature
//! enabled, where it enforces the canonical lock order documented in
//! DESIGN.md §3c:
//!
//! | order | lock                                   | crate  |
//! |-------|----------------------------------------|--------|
//! | 1     | `ObjectRecord::run_lock` (semantic)    | kernel |
//! | 2     | `NodeKernel::activations`              | kernel |
//! | 3     | `NodeKernel::deliveries`               | kernel |
//! | 4     | `LocationCache` shard (RwLock)         | kernel |
//! | 5     | `ThreadRegistry::chains` / `seen`      | events |
//! | 6     | `Activation::inner` (per-thread)       | kernel |
//! | —     | leaf locks (telemetry registry, net paths): never held while taking any of the above | |
//!
//! Inner locks may be taken while outer ones are held, never the
//! reverse; lockdep turns any future inversion into a named report the
//! first time the inverted order runs.

use doct::prelude::*;
use doct_events::{AttachSpec, EventFacility, HandlerDecision};
use doct_kernel::SpawnOptions;
use std::time::Duration;

fn counter(cluster: &Cluster, name: &str) -> u64 {
    cluster
        .telemetry()
        .metrics()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn representative_workload_is_cycle_free() {
    let baseline = parking_lot::lockdep::stats();

    let cluster = Cluster::builder(4)
        .config(KernelConfig::with_locator(LocatorStrategy::Broadcast))
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("PING");
    facility.register_event("FANOUT");

    // An exclusive object exercises the semantic run lock across nested
    // blocking work (the by-design hold lockdep must not report).
    cluster.register_class(
        "worker",
        ClassBuilder::new("worker")
            .entry("work", |ctx, args| {
                ctx.sleep(Duration::from_millis(5))?;
                Ok(args)
            })
            .build(),
    );
    let obj = cluster
        .create_object(ObjectConfig::new("worker", NodeId(1)).exclusive())
        .unwrap();

    // A group of handler threads across nodes: group raises walk the
    // registry chains + seen ring on every member.
    let group = cluster.create_group();
    let mut handles = Vec::new();
    for node in 0..4usize {
        let opts = SpawnOptions {
            group: Some(group),
            ..Default::default()
        };
        let handle = cluster
            .spawn_fn_with(node, opts, move |ctx| {
                ctx.attach_handler(
                    "PING",
                    AttachSpec::proc("pong", |_c, _b| HandlerDecision::Resume(Value::Null)),
                );
                ctx.attach_handler(
                    "FANOUT",
                    AttachSpec::proc("fan", |_c, _b| HandlerDecision::Resume(Value::Null)),
                );
                // Remote invoke: call_remote's blocking point runs with
                // whatever locks the caller holds — must be none.
                let got = ctx.invoke(obj, "work", Value::Int(7))?;
                assert_eq!(got, Value::Int(7));
                ctx.sleep(Duration::from_millis(400))?;
                Ok(Value::Null)
            })
            .unwrap();
        handles.push(handle);
    }
    std::thread::sleep(Duration::from_millis(100));

    // Unicast raises (warm the location cache), then group fan-out.
    for i in 0..8 {
        let target = handles[i % handles.len()].thread();
        let summary = cluster
            .raise_from(i % 4, EventName::user("PING"), Value::Null, target)
            .wait();
        assert_eq!(summary.delivered, 1, "raise {i}: {summary:?}");
    }
    for _ in 0..4 {
        let summary = cluster
            .raise_from(
                0,
                EventName::user("FANOUT"),
                Value::Null,
                RaiseTarget::Group(group),
            )
            .wait();
        assert_eq!(summary.delivered, 4, "{summary:?}");
    }

    // Drain: QUIT every thread, then let the cluster shut down (sweeps,
    // tracker resolution, timer teardown).
    for handle in &handles {
        let _ = cluster
            .raise_from(0, SystemEvent::Quit, Value::Null, handle.thread())
            .wait();
    }
    for handle in handles {
        let _ = handle.join_timeout(Duration::from_secs(5));
    }

    let stats = parking_lot::lockdep::stats();
    if parking_lot::lockdep::enabled() {
        // The workload must have exercised real lock nesting for the
        // zero-cycle assertion to mean anything.
        assert!(
            stats.classes > baseline.classes && stats.edges > baseline.edges,
            "lockdep saw no lock nesting — workload too shallow: {stats:?}"
        );
        // Telemetry mirrors the process-global counters on snapshot.
        assert_eq!(counter(&cluster, "lockdep.classes"), stats.classes);
        assert_eq!(counter(&cluster, "lockdep.edges"), stats.edges);
    }
    assert_eq!(
        stats.cycles,
        baseline.cycles,
        "lock-order cycle introduced:\n{}",
        parking_lot::lockdep::cycle_reports().join("\n")
    );
    assert_eq!(
        stats.blocking_violations,
        baseline.blocking_violations,
        "lock held across a blocking operation:\n{}",
        parking_lot::lockdep::blocking_reports().join("\n")
    );
}
