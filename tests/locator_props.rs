//! Randomized test: for any invocation-chain shape and any locator
//! strategy, an event raised at a (stationary-tip) thread is delivered
//! exactly once, at the node actually hosting the tip. Chain shapes come
//! from a fixed seed; every strategy is exercised every run.

use doct::prelude::*;
use doct_events::EventFacility;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn run_case(strategy: LocatorStrategy, homes: Vec<u32>, raiser: usize) {
    let nodes = 4usize;
    let cluster = Cluster::builder(nodes)
        .config(KernelConfig::with_locator(strategy))
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("PROBE");
    cluster.register_class(
        "deep",
        ClassBuilder::new("deep")
            .entry("go", |ctx, args| {
                let list = args.as_list().unwrap_or(&[]).to_vec();
                match list.split_first() {
                    None => {
                        ctx.sleep(Duration::from_secs(60))?;
                        Ok(Value::Null)
                    }
                    Some((head, rest)) => {
                        let next = ObjectId(head.as_int().unwrap_or(0) as u64);
                        ctx.invoke(next, "go", Value::List(rest.to_vec()))
                    }
                }
            })
            .build(),
    );
    let chain: Vec<ObjectId> = homes
        .iter()
        .map(|&h| {
            cluster
                .create_object(ObjectConfig::new("deep", NodeId(h % nodes as u32)))
                .expect("create")
        })
        .collect();
    let tip_node = homes.last().map(|&h| h % nodes as u32).unwrap_or(0);

    let hits = Arc::new(AtomicU64::new(0));
    let h2 = Arc::clone(&hits);
    let opts = SpawnOptions::default();
    let handle = cluster
        .spawn_fn_with(0, opts, move |ctx| {
            ctx.attach_handler(
                "PROBE",
                AttachSpec::proc("hit", move |_c, _b| {
                    h2.fetch_add(1, Ordering::Relaxed);
                    HandlerDecision::Resume(Value::Null)
                }),
            );
            match chain.split_first() {
                None => {
                    ctx.sleep(Duration::from_secs(60))?;
                    Ok(Value::Null)
                }
                Some((first, rest)) => {
                    let args = Value::List(rest.iter().map(|o| Value::Int(o.0 as i64)).collect());
                    ctx.invoke(*first, "go", args)
                }
            }
        })
        .expect("spawn");
    // Wait until the tip has settled into its sleep.
    std::thread::sleep(Duration::from_millis(60));

    let summary = cluster
        .raise_from(
            raiser % nodes,
            EventName::user("PROBE"),
            Value::Null,
            handle.thread(),
        )
        .wait();
    assert_eq!(summary.delivered, 1, "{strategy:?} homes={homes:?}");
    assert_eq!(
        summary.nodes,
        vec![NodeId(tip_node)],
        "{strategy:?}: delivered at the tip"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while hits.load(Ordering::Relaxed) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        hits.load(Ordering::Relaxed),
        1,
        "{strategy:?}: exactly once"
    );
    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, handle.thread())
        .wait();
    let _ = handle.join_timeout(Duration::from_secs(5));
}

#[test]
fn any_chain_any_strategy_delivers_exactly_once() {
    let strategies = [
        LocatorStrategy::Broadcast,
        LocatorStrategy::PathTrace,
        LocatorStrategy::Multicast,
    ];
    let mut rng = StdRng::seed_from_u64(0x10CA_7E01);
    // Four chain shapes per strategy, including the empty chain.
    for strategy in strategies {
        for case in 0..4 {
            let homes: Vec<u32> = if case == 0 {
                Vec::new()
            } else {
                let len = rng.gen_range(1..6usize);
                (0..len).map(|_| rng.gen_range(0u32..4)).collect()
            };
            let raiser = rng.gen_range(0..4usize);
            run_case(strategy, homes, raiser);
        }
    }
}
