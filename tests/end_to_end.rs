//! End-to-end scenario: every §6 application running together in one
//! cluster — a distributed application holding locks, being monitored,
//! backing memory with a user-level pager, and finally ^C'd cleanly.

use doct::prelude::*;
use doct::services::pager::create_pageable_segment;
use doct_events::EventFacility;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn full_application_lifecycle() {
    let cluster = Cluster::new(4);
    let facility = EventFacility::install(&cluster);

    // --- infrastructure services -------------------------------------
    let locks = LockManager::create(&cluster, NodeId(1)).unwrap();
    let monitor = MonitorServer::create(&cluster, NodeId(3)).unwrap();
    let pager = PagerServer::create(&cluster, &facility, NodeId(2), |_s, i: u32, len| {
        vec![i as u8; len]
    })
    .unwrap();
    for n in 0..4 {
        pager.serve_node(&cluster, n);
    }
    let seg = create_pageable_segment(&cluster, 0, 8 * 1024);

    // --- application objects ------------------------------------------
    cluster.register_class(
        "worker-obj",
        ClassBuilder::new("worker-obj")
            .entry("churn", |ctx, args| {
                let rounds = args.as_int().unwrap_or(10);
                for _ in 0..rounds {
                    ctx.compute(2_000)?;
                    ctx.sleep(Duration::from_millis(2))?;
                }
                Ok(Value::Null)
            })
            .build(),
    );
    let app_objects: Vec<ObjectId> = (0..4)
        .map(|i| {
            cluster
                .create_object(ObjectConfig::new("worker-obj", NodeId(i)))
                .unwrap()
        })
        .collect();
    let aborted = Arc::new(AtomicU64::new(0));
    for &o in &app_objects {
        let a = Arc::clone(&aborted);
        install_abort_cleanup(&facility, &cluster, o, move |_c, _o, _b| {
            a.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
    }

    // --- the application ------------------------------------------------
    let group = cluster.create_group();
    let objs = app_objects.clone();
    let seg_id = seg.id;
    let root = cluster
        .spawn_fn_with(
            0,
            SpawnOptions {
                group: Some(group),
                io_channel: Some("app-console".into()),
                ..Default::default()
            },
            move |ctx| {
                arm_ctrl_c(ctx, objs.clone());
                let session = monitor.start(ctx, Duration::from_millis(10));
                // Hold locks (their cleanup chains onto TERMINATE).
                let _a = locks.acquire(ctx, "db")?;
                let _b = locks.acquire(ctx, "journal")?;
                // Touch pageable memory (faults via the user pager).
                let data = ctx
                    .kernel()
                    .dsm()
                    .read(seg_id, 0, 16)
                    .map_err(KernelError::Dsm)?;
                ctx.emit(format!("page 0 starts with {:?}", &data[..4]));
                // Children doing work in remote objects.
                let kids: Vec<_> = objs
                    .iter()
                    .map(|&o| ctx.invoke_async(o, "churn", 10_000i64))
                    .collect();
                // Root churns too; monitored the whole time.
                ctx.invoke(objs[1], "churn", 10_000i64)?;
                for k in kids {
                    let _ = k.claim();
                }
                monitor.stop(ctx, session);
                Ok(Value::Null)
            },
        )
        .unwrap();

    // Let the app run, monitored and locked.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(cluster.groups().member_count(group), 5, "root + 4 children");
    let held = cluster
        .spawn_fn(2, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(2), "both locks held");

    // ^C the whole thing.
    let summary = press_ctrl_c(&cluster, 3, root.thread());
    assert_eq!(summary.delivered, 1, "{summary:?}");
    let r = root
        .join_timeout(Duration::from_secs(10))
        .expect("root died");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    assert!(
        cluster.await_quiescence(Duration::from_secs(10)),
        "no orphans"
    );

    // Locks released by the TERMINATE chain.
    let held = cluster
        .spawn_fn(2, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(0), "locks released by cleanup chain");

    // Objects all aborted.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while aborted.load(Ordering::Relaxed) < 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(aborted.load(Ordering::Relaxed), 4);

    // Monitor collected samples from the application's lifetime.
    let samples = monitor.samples(&cluster).unwrap();
    assert!(!samples.is_empty(), "monitoring ran");

    // Pager served the faults.
    let stats = pager.stats(&cluster).unwrap();
    assert!(stats.get("faults").and_then(Value::as_int).unwrap_or(0) >= 1);

    // Application console got its output.
    let lines = cluster.io().lines("app-console");
    assert!(!lines.is_empty(), "console output followed the thread");
}
