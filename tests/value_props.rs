//! Randomized tests for the `Value` codec used for invocation arguments
//! and DSM-resident object state. Cases are generated from a fixed seed
//! so every run explores the same corpus deterministically.

use doct::kernel::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const CASES: u64 = 512;

fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Mix ASCII with a few multi-byte code points.
            match rng.gen_range(0..10u32) {
                0 => 'é',
                1 => '√',
                2 => '"',
                3 => '\\',
                _ => char::from(rng.gen_range(0x20u32..0x7f) as u8),
            }
        })
        .collect()
}

fn arb_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect()
}

/// Random `Value`, at most `depth` container levels deep.
fn arb_value(rng: &mut StdRng, depth: usize) -> Value {
    let variants = if depth == 0 { 6 } else { 8 };
    match rng.gen_range(0..variants) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2u32) == 1),
        2 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
        // Totally ordered floats only (NaN breaks PartialEq round-trips,
        // and the codec is allowed to require that).
        3 => Value::Float(rng.gen_range(-1_000_000_000i64..1_000_000_000) as f64 / 64.0),
        4 => Value::Str(arb_string(rng, 40)),
        5 => Value::from(arb_bytes(rng, 64)),
        6 => Value::List(
            (0..rng.gen_range(0..8usize))
                .map(|_| arb_value(rng, depth - 1))
                .collect(),
        ),
        _ => {
            let mut m = BTreeMap::new();
            for _ in 0..rng.gen_range(0..8usize) {
                let len = rng.gen_range(1..=8usize);
                let key: String = (0..len)
                    .map(|_| char::from(b'a' + rng.gen_range(0u64..26) as u8))
                    .collect();
                m.insert(key, arb_value(rng, depth - 1));
            }
            Value::Map(m)
        }
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for case in 0..CASES {
        let v = arb_value(&mut rng, 3);
        let bytes = v.encode();
        let back = Value::decode(&bytes).expect("decode");
        assert_eq!(back, v, "case {case}");
    }
}

#[test]
fn wire_size_bounds_encoded_size() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for case in 0..CASES {
        let v = arb_value(&mut rng, 3);
        // wire_size is an estimate; it must be at least the scalar payload
        // size and never absurdly smaller than the encoding.
        let enc = v.encode();
        assert!(
            v.wire_size() + 16 >= enc.len() / 2,
            "case {case}: wire_size {} vs encoded {}",
            v.wire_size(),
            enc.len()
        );
    }
}

#[test]
fn truncation_never_panics_and_always_errors() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for case in 0..CASES {
        let v = arb_value(&mut rng, 3);
        let bytes = v.encode();
        let cut = rng.gen_range(0..100usize);
        if cut < bytes.len() {
            // Truncated input must error (not panic); prefix-decoding can
            // only succeed for the empty-trailing case which truncation
            // excludes.
            assert!(
                Value::decode(&bytes[..cut]).is_err(),
                "case {case}: cut {cut} of {} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let bytes = arb_bytes(&mut rng, 256);
        let _ = Value::decode(&bytes);
    }
}
