//! Property tests for the `Value` codec used for invocation arguments and
//! DSM-resident object state.

use doct::kernel::Value;
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Totally ordered floats only (NaN breaks PartialEq round-trips,
        // and the codec is allowed to require that).
        (-1e15f64..1e15).prop_map(Value::Float),
        ".{0,40}".prop_map(Value::Str),
        vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..8).prop_map(Value::List),
            btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trips(v in arb_value()) {
        let bytes = v.encode();
        let back = Value::decode(&bytes).expect("decode");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn wire_size_bounds_encoded_size(v in arb_value()) {
        // wire_size is an estimate; it must be at least the scalar payload
        // size and never absurdly smaller than the encoding.
        let enc = v.encode();
        prop_assert!(v.wire_size() + 16 >= enc.len() / 2,
            "wire_size {} vs encoded {}", v.wire_size(), enc.len());
    }

    #[test]
    fn truncation_never_panics_and_always_errors(v in arb_value(), cut in 0usize..100) {
        let bytes = v.encode();
        if cut < bytes.len() {
            // Truncated input must error (not panic); prefix-decoding can
            // only succeed for the empty-trailing case which truncation
            // excludes.
            prop_assert!(Value::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Value::decode(&bytes);
    }
}
