//! Integration tests for the thread-location hint cache: the unicast
//! fast path must collapse locator waves to single probes for stationary
//! targets, stay exactly-once when the target migrated after the hint was
//! recorded (stale unicast → invalidate → wave fallback), and never wait
//! on a hint pointing at a node the failure detector has declared dead.

use doct::prelude::*;
use doct_events::{AttachSpec, EventFacility, HandlerDecision};
use doct_kernel::ClusterBuilder;
use doct_net::{FailureConfig, ReliabilityConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn counter(cluster: &Cluster, name: &str) -> u64 {
    cluster
        .telemetry()
        .metrics()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn assert_ledger_balances(cluster: &Cluster) {
    let requested = counter(cluster, "delivery.requested");
    let delivered = counter(cluster, "delivery.delivered");
    let dead = counter(cluster, "delivery.dead");
    let timeout = counter(cluster, "delivery.timeout");
    let lost = counter(cluster, "delivery.lost");
    assert_eq!(
        requested,
        delivered + dead + timeout + lost,
        "ledger out of balance: requested {requested} != delivered {delivered} \
         + dead {dead} + timeout {timeout} + lost {lost}"
    );
}

fn fast_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        max_retries: 60,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: Duration::from_millis(2),
        tick: Duration::from_millis(2),
        heartbeat_interval: Duration::from_millis(5),
        dedupe_window: 1024,
        ..ReliabilityConfig::default()
    }
}

/// Register a "sleepy" class whose `park` entry sleeps for the given
/// number of milliseconds (taken from the argument), keeping the thread's
/// tip at the object's home node with open delivery points.
fn register_sleepy(cluster: &Cluster) {
    cluster.register_class(
        "sleepy",
        ClassBuilder::new("sleepy")
            .entry("park", |ctx, args| {
                let ms = args.as_int().unwrap_or(100) as u64;
                ctx.sleep(Duration::from_millis(ms))?;
                Ok(Value::Null)
            })
            .build(),
    );
}

/// A stationary remote target under the broadcast locator: after the
/// first (wave-located) raise warms the cache, every further raise goes
/// out as one hinted unicast and the hit counters record it.
#[test]
fn stationary_target_uses_the_unicast_fast_path() {
    let cluster = Cluster::builder(4)
        .config(KernelConfig::with_locator(LocatorStrategy::Broadcast))
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("PING");
    register_sleepy(&cluster);
    let obj = cluster
        .create_object(ObjectConfig::new("sleepy", NodeId(1)))
        .unwrap();

    let hits = Arc::new(AtomicU64::new(0));
    let h2 = Arc::clone(&hits);
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            ctx.attach_handler(
                "PING",
                AttachSpec::proc("count", move |_c, _b| {
                    h2.fetch_add(1, Ordering::Relaxed);
                    HandlerDecision::Resume(Value::Null)
                }),
            );
            ctx.invoke(obj, "park", Value::Int(3_000))
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));

    // Cold raise: full broadcast wave, which teaches node 2 (the raiser)
    // where the thread is.
    let raiser = 2usize;
    let summary = cluster
        .raise_from(
            raiser,
            EventName::user("PING"),
            Value::Null,
            handle.thread(),
        )
        .wait();
    assert_eq!(summary.delivered, 1);
    assert_eq!(summary.nodes, vec![NodeId(1)]);
    assert_eq!(
        cluster
            .kernel(raiser)
            .location_cache()
            .unwrap()
            .peek(handle.thread()),
        Some(NodeId(1)),
        "the delivery receipt populated the raiser's cache"
    );

    // Warm raises: every one is a single hinted unicast, no broadcast.
    const WARM: u64 = 10;
    let before = cluster.net().stats().snapshot();
    let hits_before = counter(&cluster, "locator.cache_hits");
    for _ in 0..WARM {
        let summary = cluster
            .raise_from(
                raiser,
                EventName::user("PING"),
                Value::Null,
                handle.thread(),
            )
            .wait();
        assert_eq!(summary.delivered, 1);
        assert_eq!(summary.nodes, vec![NodeId(1)]);
    }
    let delta = before.delta(&cluster.net().stats().snapshot());
    assert_eq!(delta.hint_unicasts(), WARM, "one unicast probe per raise");
    assert_eq!(delta.broadcasts(), 0, "no wave after warm-up");
    assert_eq!(
        counter(&cluster, "locator.cache_hits") - hits_before,
        WARM,
        "every warm raise hit the cache"
    );

    let deadline = Instant::now() + Duration::from_secs(5);
    while hits.load(Ordering::Relaxed) < WARM + 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(hits.load(Ordering::Relaxed), WARM + 1, "exactly once each");
    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, handle.thread())
        .wait();
    let _ = handle.join_timeout(Duration::from_secs(5));
    assert_ledger_balances(&cluster);
}

/// The thread migrates between a cached raise and the next one: the
/// stale unicast probe answers "not here", the entry is invalidated, the
/// wave fallback finds the new tip, and the handler still runs exactly
/// once per raise.
#[test]
fn stale_hint_falls_back_to_the_wave_exactly_once() {
    let cluster = Cluster::builder(4)
        .config(KernelConfig::with_locator(LocatorStrategy::Broadcast))
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("PING");
    register_sleepy(&cluster);
    let first_stop = cluster
        .create_object(ObjectConfig::new("sleepy", NodeId(1)))
        .unwrap();
    let second_stop = cluster
        .create_object(ObjectConfig::new("sleepy", NodeId(2)))
        .unwrap();

    let hits = Arc::new(AtomicU64::new(0));
    let h2 = Arc::clone(&hits);
    let handle = cluster
        .spawn_fn(0, move |ctx| {
            ctx.attach_handler(
                "PING",
                AttachSpec::proc("count", move |_c, _b| {
                    h2.fetch_add(1, Ordering::Relaxed);
                    HandlerDecision::Resume(Value::Null)
                }),
            );
            ctx.invoke(first_stop, "park", Value::Int(300))?;
            ctx.invoke(second_stop, "park", Value::Int(3_000))
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));

    // Raise while the tip parks on node 1: caches thread → node 1.
    let summary = cluster
        .raise_from(3, EventName::user("PING"), Value::Null, handle.thread())
        .wait();
    assert_eq!(summary.delivered, 1);
    assert_eq!(summary.nodes, vec![NodeId(1)]);

    // Let the thread move on to node 2, then raise on the stale hint.
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.kernel(2).tcbs().trail(handle.thread()) != doct_kernel::Trail::TipHere
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stale_before = counter(&cluster, "locator.cache_stale");
    let summary = cluster
        .raise_from(3, EventName::user("PING"), Value::Null, handle.thread())
        .wait();
    assert_eq!(summary.delivered, 1, "wave fallback still delivers");
    assert_eq!(summary.nodes, vec![NodeId(2)], "delivered at the new tip");
    assert!(
        counter(&cluster, "locator.cache_stale") > stale_before,
        "the stale hint was detected and invalidated"
    );
    assert_eq!(
        cluster
            .kernel(3)
            .location_cache()
            .unwrap()
            .peek(handle.thread()),
        Some(NodeId(2)),
        "the fallback receipt re-learned the new location"
    );

    let deadline = Instant::now() + Duration::from_secs(5);
    while hits.load(Ordering::Relaxed) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(hits.load(Ordering::Relaxed), 2, "exactly once per raise");
    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, handle.thread())
        .wait();
    let _ = handle.join_timeout(Duration::from_secs(5));
    assert_ledger_balances(&cluster);
}

/// A cached hint pointing at a node the failure detector has declared
/// dead is purged on the next raise instead of being probed and waited
/// on: the raise resolves quickly (well inside the delivery timeout) and
/// no hint unicast is sent toward the dead node.
#[test]
fn dead_node_hint_is_purged_not_waited_on() {
    let cluster = ClusterBuilder::new(3)
        .config(KernelConfig::with_locator(LocatorStrategy::Broadcast))
        .reliable_with(fast_reliability(), FailureConfig::default())
        .build();
    let facility = EventFacility::install(&cluster);
    facility.register_event("PING");

    // Thread rooted and parked on node 2.
    let handle = cluster
        .spawn_fn(2, |ctx| {
            ctx.sleep(Duration::from_secs(30))?;
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let summary = cluster
        .raise_from(0, EventName::user("PING"), Value::Null, handle.thread())
        .wait();
    assert_eq!(summary.delivered, 1);
    let cache = cluster.kernel(0).location_cache().unwrap();
    assert_eq!(cache.peek(handle.thread()), Some(NodeId(2)));

    cluster.net().isolate(&[NodeId(2)]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.net().peer_state(NodeId(0), NodeId(2)) != Some(doct_net::PeerState::Dead)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        cluster.net().peer_state(NodeId(0), NodeId(2)),
        Some(doct_net::PeerState::Dead),
        "failure detector never declared node 2 dead"
    );

    let unicasts_before = cluster.net().stats().hint_unicasts();
    let evictions_before = counter(&cluster, "locator.cache_evictions");
    let started = Instant::now();
    let summary = cluster
        .raise_from(0, EventName::user("PING"), Value::Null, handle.thread())
        .wait();
    let elapsed = started.elapsed();
    assert_eq!(summary.delivered, 0);
    assert_eq!(summary.dead, 1, "dead-target verdict, not a hang");
    assert!(
        elapsed < Duration::from_secs(3),
        "resolved via the detector ({elapsed:?}), not the full delivery timeout"
    );
    assert_eq!(
        cluster.net().stats().hint_unicasts(),
        unicasts_before,
        "no unicast was sent toward the dead hint"
    );
    assert_eq!(cache.peek(handle.thread()), None, "the hint was purged");
    assert!(
        counter(&cluster, "locator.cache_evictions") > evictions_before,
        "the purge is counted as an eviction"
    );
    assert_ledger_balances(&cluster);
    cluster.net().heal();
}
