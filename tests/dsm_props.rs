//! Randomized tests for the DSM substrate: a random single-threaded
//! script of reads/writes issued from random nodes must behave exactly
//! like one flat byte array (sequential consistency is trivially testable
//! for a sequential program — the protocol must not lose or corrupt data
//! while pages migrate). Scripts come from a fixed seed, so every run
//! replays the same corpus.

use doct::dsm::loopback::LoopbackCluster;
use doct::dsm::{AccessLevel, PageId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Op {
    Write {
        node: usize,
        offset: usize,
        data: Vec<u8>,
    },
    Read {
        node: usize,
        offset: usize,
        len: usize,
    },
}

fn arb_op(rng: &mut StdRng, nodes: usize, seg_size: usize) -> Op {
    let node = rng.gen_range(0..nodes);
    let offset = rng.gen_range(0..seg_size);
    if rng.gen_range(0..2u32) == 0 {
        let want = rng.gen_range(1..32usize);
        let len = want.min(seg_size - offset).max(1);
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        Op::Write { node, offset, data }
    } else {
        let want = rng.gen_range(1..32usize);
        Op::Read {
            node,
            offset,
            len: want.min(seg_size - offset).max(1),
        }
    }
}

fn arb_script(rng: &mut StdRng, nodes: usize, seg_size: usize, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| arb_op(rng, nodes, seg_size)).collect()
}

#[test]
fn random_script_matches_flat_memory() {
    const SEG: usize = 3000;
    let mut rng = StdRng::seed_from_u64(0xD5A0_0001);
    for case in 0..48 {
        let ops = arb_script(&mut rng, 3, SEG, 60);
        let cluster = LoopbackCluster::new(3);
        let seg = cluster.shared_segment(0, SEG);
        let mut oracle = vec![0u8; SEG];
        for op in &ops {
            match op {
                Op::Write { node, offset, data } => {
                    cluster
                        .node(*node)
                        .write(seg.id, *offset, data)
                        .expect("write");
                    oracle[*offset..*offset + data.len()].copy_from_slice(data);
                }
                Op::Read { node, offset, len } => {
                    let got = cluster
                        .node(*node)
                        .read(seg.id, *offset, *len)
                        .expect("read");
                    assert_eq!(
                        &got[..],
                        &oracle[*offset..*offset + *len],
                        "case {case}: read at {offset} len {len} from n{node}"
                    );
                }
            }
        }
        // Final full scan from every node agrees with the oracle.
        for n in 0..3 {
            let got = cluster.node(n).read(seg.id, 0, SEG).expect("scan");
            assert_eq!(&got[..], &oracle[..], "case {case}: final scan from n{n}");
        }
    }
}

#[test]
fn swmr_invariant_holds_after_any_script() {
    const SEG: usize = 2048;
    let mut rng = StdRng::seed_from_u64(0xD5A0_0002);
    for case in 0..48 {
        // After the script, every page has at most one Owned holder, and
        // if a page has an Owned holder no other node holds Read.
        let ops = arb_script(&mut rng, 3, SEG, 40);
        let cluster = LoopbackCluster::new(3);
        let seg = cluster.shared_segment(0, SEG);
        for op in &ops {
            match op {
                Op::Write { node, offset, data } => {
                    cluster
                        .node(*node)
                        .write(seg.id, *offset, data)
                        .expect("write");
                }
                Op::Read { node, offset, len } => {
                    cluster
                        .node(*node)
                        .read(seg.id, *offset, *len)
                        .expect("read");
                }
            }
        }
        for index in 0..seg.page_count() {
            let page = PageId {
                segment: seg.id,
                index,
            };
            let levels: Vec<AccessLevel> =
                (0..3).map(|n| cluster.node(n).access_level(page)).collect();
            let owners = levels.iter().filter(|&&l| l == AccessLevel::Owned).count();
            let readers = levels.iter().filter(|&&l| l == AccessLevel::Read).count();
            assert!(owners <= 1, "case {case}: page {index}: {owners} owners");
            if owners == 1 {
                assert_eq!(
                    readers, 0,
                    "case {case}: page {index}: owner plus {readers} readers"
                );
            }
        }
    }
}
