//! Property tests for the DSM substrate: a random single-threaded script
//! of reads/writes issued from random nodes must behave exactly like one
//! flat byte array (sequential consistency is trivially testable for a
//! sequential program — the protocol must not lose or corrupt data while
//! pages migrate).

use doct::dsm::loopback::LoopbackCluster;
use doct::dsm::{AccessLevel, PageId};
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write {
        node: usize,
        offset: usize,
        data: Vec<u8>,
    },
    Read {
        node: usize,
        offset: usize,
        len: usize,
    },
}

fn arb_op(nodes: usize, seg_size: usize) -> impl Strategy<Value = Op> {
    let w =
        (0..nodes, 0..seg_size, vec(any::<u8>(), 1..32)).prop_map(move |(node, offset, data)| {
            let offset = offset.min(seg_size - 1);
            let len = data.len().min(seg_size - offset);
            Op::Write {
                node,
                offset,
                data: data[..len].to_vec(),
            }
        });
    let r = (0..nodes, 0..seg_size, 1usize..32).prop_map(move |(node, offset, len)| {
        let offset = offset.min(seg_size - 1);
        Op::Read {
            node,
            offset,
            len: len.min(seg_size - offset),
        }
    });
    prop_oneof![w, r]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_script_matches_flat_memory(ops in vec(arb_op(3, 3000), 1..60)) {
        const SEG: usize = 3000;
        let cluster = LoopbackCluster::new(3);
        let seg = cluster.shared_segment(0, SEG);
        let mut oracle = vec![0u8; SEG];
        for op in &ops {
            match op {
                Op::Write { node, offset, data } => {
                    cluster.node(*node).write(seg.id, *offset, data).expect("write");
                    oracle[*offset..*offset + data.len()].copy_from_slice(data);
                }
                Op::Read { node, offset, len } => {
                    let got = cluster.node(*node).read(seg.id, *offset, *len).expect("read");
                    prop_assert_eq!(&got[..], &oracle[*offset..*offset + *len],
                        "read at {} len {} from n{}", offset, len, node);
                }
            }
        }
        // Final full scan from every node agrees with the oracle.
        for n in 0..3 {
            let got = cluster.node(n).read(seg.id, 0, SEG).expect("scan");
            prop_assert_eq!(&got[..], &oracle[..], "final scan from n{}", n);
        }
    }

    #[test]
    fn swmr_invariant_holds_after_any_script(ops in vec(arb_op(3, 2048), 1..40)) {
        // After the script, every page has at most one Owned holder, and
        // if a page has an Owned holder no other node holds Read.
        let cluster = LoopbackCluster::new(3);
        let seg = cluster.shared_segment(0, 2048);
        for op in &ops {
            match op {
                Op::Write { node, offset, data } => {
                    cluster.node(*node).write(seg.id, *offset, data).expect("write");
                }
                Op::Read { node, offset, len } => {
                    cluster.node(*node).read(seg.id, *offset, *len).expect("read");
                }
            }
        }
        for index in 0..seg.page_count() {
            let page = PageId { segment: seg.id, index };
            let levels: Vec<AccessLevel> =
                (0..3).map(|n| cluster.node(n).access_level(page)).collect();
            let owners = levels.iter().filter(|&&l| l == AccessLevel::Owned).count();
            let readers = levels.iter().filter(|&&l| l == AccessLevel::Read).count();
            prop_assert!(owners <= 1, "page {}: {} owners", index, owners);
            if owners == 1 {
                prop_assert_eq!(readers, 0,
                    "page {}: owner plus {} readers", index, readers);
            }
        }
    }
}
