//! QUIT (§6.3 second phase) must be unmaskable AND still honor §4.2's
//! unlock-on-death guarantee: a thread hard-killed inside its critical
//! section runs its TERMINATE-chained cleanup handlers before dying, so
//! no lock leaks. This is the deterministic core of the race the
//! hard-termination soak exercises statistically: a QUIT landing at any
//! delivery point while a lock is held used to leak it forever.

use doct::prelude::*;
use doct_events::EventFacility;
use std::time::Duration;

#[test]
fn quit_while_holding_a_lock_releases_it() {
    let cluster = Cluster::new(2);
    let _facility = EventFacility::install(&cluster);
    let locks = LockManager::create(&cluster, NodeId(1)).unwrap();
    let h = cluster
        .spawn_fn(0, move |ctx| {
            let _lock = locks.acquire(ctx, "hot")?;
            // Park inside the critical section; the sleep is a delivery
            // point, so the QUIT below lands while the lock is held.
            ctx.sleep(Duration::from_secs(60))?;
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let _ = cluster
        .raise_from(1, SystemEvent::Quit, Value::Null, h.thread())
        .wait();
    let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    let held = cluster
        .spawn_fn(1, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(0), "QUIT must release held locks");
}

#[test]
fn quit_cannot_be_masked_by_a_resume_handler() {
    // A TERMINATE handler that Resumes can rescue the thread from
    // TERMINATE — but on QUIT it runs for side effects only and the
    // thread dies regardless.
    let cluster = Cluster::new(1);
    let _facility = EventFacility::install(&cluster);
    let h = cluster
        .spawn_fn(0, move |ctx| {
            use doct_events::{AttachSpec, CtxEvents, HandlerDecision};
            ctx.attach_handler(
                SystemEvent::Terminate,
                AttachSpec::proc("shield", |_c, _b| HandlerDecision::Resume(Value::Null)),
            );
            loop {
                ctx.sleep(Duration::from_millis(5))?;
            }
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, h.thread())
        .wait();
    let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
}
