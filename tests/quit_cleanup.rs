//! QUIT (§6.3 second phase) must be unmaskable AND still honor §4.2's
//! unlock-on-death guarantee: a thread hard-killed inside its critical
//! section runs its TERMINATE-chained cleanup handlers before dying, so
//! no lock leaks. This is the deterministic core of the race the
//! hard-termination soak exercises statistically: a QUIT landing at any
//! delivery point while a lock is held used to leak it forever.

use doct::prelude::*;
use doct_events::EventFacility;
use doct_kernel::{ClusterBuilder, KernelConfig, RaiseTarget, SpawnOptions};
use doct_net::{FailureConfig, ReliabilityConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn quit_while_holding_a_lock_releases_it() {
    let cluster = Cluster::new(2);
    let _facility = EventFacility::install(&cluster);
    let locks = LockManager::create(&cluster, NodeId(1)).unwrap();
    let h = cluster
        .spawn_fn(0, move |ctx| {
            let _lock = locks.acquire(ctx, "hot")?;
            // Park inside the critical section; the sleep is a delivery
            // point, so the QUIT below lands while the lock is held.
            ctx.sleep(Duration::from_secs(60))?;
            Ok(Value::Null)
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let _ = cluster
        .raise_from(1, SystemEvent::Quit, Value::Null, h.thread())
        .wait();
    let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    let held = cluster
        .spawn_fn(1, move |ctx| Ok(Value::Int(locks.held_count(ctx)?)))
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(held, Value::Int(0), "QUIT must release held locks");
}

#[test]
fn quit_delivered_mid_batch_runs_cleanup_handlers_exactly_once() {
    // Two co-located group members give the QUIT raise a batched probe
    // wave (one BatchEnvelope). The ack path back to the raiser is cut so
    // the batch is retransmitted — the duplicate batch must be suppressed
    // whole, and each dying thread's TERMINATE-chained cleanup handler
    // must run exactly once, not once per batch copy.
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(5),
            ..KernelConfig::default()
        })
        .reliable_with(
            ReliabilityConfig {
                max_retries: 60,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                tick: Duration::from_millis(2),
                heartbeat_interval: Duration::from_millis(5),
                ..ReliabilityConfig::default()
            },
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    let _facility = EventFacility::install(&cluster);
    let cleanups = Arc::new(AtomicUsize::new(0));
    let group = cluster.create_group();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let cleanups = Arc::clone(&cleanups);
            let opts = SpawnOptions {
                group: Some(group),
                ..Default::default()
            };
            cluster
                .spawn_fn_with(1, opts, move |ctx| {
                    use doct_events::{AttachSpec, CtxEvents, HandlerDecision};
                    let cleanups = Arc::clone(&cleanups);
                    ctx.attach_cleanup_handler(
                        SystemEvent::Terminate,
                        AttachSpec::proc("count-cleanup", move |_c, _b| {
                            cleanups.fetch_add(1, Ordering::SeqCst);
                            HandlerDecision::Resume(Value::Null)
                        }),
                    );
                    loop {
                        ctx.sleep(Duration::from_millis(5))?;
                    }
                })
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Lose acks and receipts on the reverse path so the QUIT batch is
    // retransmitted while the targets are already dying.
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), false)
        .unwrap();
    let ticket = cluster.raise_from(0, SystemEvent::Quit, Value::Null, RaiseTarget::Group(group));
    std::thread::sleep(Duration::from_millis(150));
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), true)
        .unwrap();
    let _ = ticket.wait();

    for h in handles {
        let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
        assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    }
    assert!(
        cluster.net().stats().dup_drops() > 0,
        "the unacked QUIT batch must have been retransmitted and suppressed"
    );
    // Give any wrong replay machinery time to double-run before counting.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        cleanups.load(Ordering::SeqCst),
        2,
        "each thread's cleanup handler must run exactly once"
    );
}

#[test]
fn quit_mid_batch_recycles_pool_chunks_and_keeps_the_ledger_balanced() {
    // Pool-recycle correctness under QUIT mid-batch (DESIGN.md §3g): warm
    // group raises churn chunk buffers through the reliability pool, then
    // a QUIT batch is forced into retransmission while its targets die.
    // The recycled chunks must never corrupt the inflight QUIT batch
    // (every thread still dies exactly once) and at quiescence the
    // delivery ledger must balance — no raise silently lost to a stale or
    // aliased buffer.
    const MEMBERS: usize = 4;
    let cluster = ClusterBuilder::new(2)
        .config(KernelConfig {
            delivery_timeout: Duration::from_secs(5),
            ..KernelConfig::default()
        })
        .reliable_with(
            ReliabilityConfig {
                max_retries: 60,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(20),
                jitter: Duration::from_millis(2),
                tick: Duration::from_millis(2),
                heartbeat_interval: Duration::from_millis(5),
                ..ReliabilityConfig::default()
            },
            FailureConfig {
                suspect_after: Duration::from_millis(500),
                dead_after: Duration::from_secs(10),
            },
        )
        .build();
    let _facility = EventFacility::install(&cluster);
    let group = cluster.create_group();
    let handles: Vec<_> = (0..MEMBERS)
        .map(|_| {
            let opts = SpawnOptions {
                group: Some(group),
                ..Default::default()
            };
            cluster
                .spawn_fn_with(1, opts, move |ctx| loop {
                    ctx.sleep(Duration::from_millis(5))?;
                })
                .unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Warm raises with a shared Bytes payload: the batched probe waves
    // take chunk buffers from the pool and recycle them on ACK-retire.
    let payload = Value::from(doct_kernel::Bytes::from_vec(vec![0xC3u8; 2048]));
    for _ in 0..8 {
        let summary = cluster
            .raise_from(
                0,
                SystemEvent::Timer,
                payload.clone(),
                RaiseTarget::Group(group),
            )
            .wait();
        assert_eq!(summary.delivered, MEMBERS, "warm raise: {summary:?}");
    }
    let warm = cluster.net().stats().snapshot();
    assert!(
        warm.pool_recycled() > 0 && warm.pool_hits() > 0,
        "warm batched raises must churn the chunk pool \
         (hits {}, recycled {})",
        warm.pool_hits(),
        warm.pool_recycled()
    );

    // Cut the ack path so the QUIT batch retransmits mid-death, then heal.
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), false)
        .unwrap();
    let ticket = cluster.raise_from(0, SystemEvent::Quit, Value::Null, RaiseTarget::Group(group));
    std::thread::sleep(Duration::from_millis(150));
    cluster
        .net()
        .set_link_one_way(NodeId(1), NodeId(0), true)
        .unwrap();
    let _ = ticket.wait();

    for h in handles {
        let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
        assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
    }
    assert!(
        cluster.net().stats().dup_drops() > 0,
        "the unacked QUIT batch must have been retransmitted and suppressed"
    );

    // Quiescence: every tracked raise accounted for, none lost to a
    // recycled buffer.
    std::thread::sleep(Duration::from_millis(300));
    let counters = cluster.telemetry().metrics().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    let requested = get("delivery.requested");
    let resolved = get("delivery.delivered")
        + get("delivery.dead")
        + get("delivery.timeout")
        + get("delivery.lost")
        + get("delivery.overloaded");
    assert!(requested > 0, "no tracked raises recorded");
    assert_eq!(
        requested, resolved,
        "delivery ledger out of balance after QUIT mid-batch"
    );
}

#[test]
fn quit_cannot_be_masked_by_a_resume_handler() {
    // A TERMINATE handler that Resumes can rescue the thread from
    // TERMINATE — but on QUIT it runs for side effects only and the
    // thread dies regardless.
    let cluster = Cluster::new(1);
    let _facility = EventFacility::install(&cluster);
    let h = cluster
        .spawn_fn(0, move |ctx| {
            use doct_events::{AttachSpec, CtxEvents, HandlerDecision};
            ctx.attach_handler(
                SystemEvent::Terminate,
                AttachSpec::proc("shield", |_c, _b| HandlerDecision::Resume(Value::Null)),
            );
            loop {
                ctx.sleep(Duration::from_millis(5))?;
            }
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let _ = cluster
        .raise_from(0, SystemEvent::Quit, Value::Null, h.thread())
        .wait();
    let r = h.join_timeout(Duration::from_secs(10)).expect("dead");
    assert!(matches!(r, Err(KernelError::Terminated)), "{r:?}");
}
