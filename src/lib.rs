#![warn(missing_docs)]
//! # doct — Distributed-Object/Concurrent-Thread event handling
//!
//! Umbrella crate for the reproduction of *"Asynchronous Event Handling in
//! Distributed Object-Based Systems"* (Menon, Dasgupta, LeBlanc; ICDCS 1993).
//!
//! The paper proposes a general-purpose asynchronous event facility for
//! passive, persistent distributed objects shared by logical threads that
//! span machine boundaries. This workspace rebuilds the whole stack:
//!
//! * [`net`] — simulated cluster network (nodes, latency, multicast, stats),
//! * [`dsm`] — page-based sequentially consistent distributed shared memory,
//! * [`kernel`] — the DO/CT kernel: objects, logical threads, RPC/DSM
//!   invocations, thread attributes and thread location,
//! * [`events`] — the paper's contribution: thread-based and object-based
//!   handlers, chaining, `raise`/`raise_and_wait`,
//! * [`services`] — the paper's §6 applications: exception handling,
//!   distributed monitoring, distributed ^C, lock management, external
//!   pagers.
//!
//! # Quickstart
//!
//! ```
//! use doct::prelude::*;
//!
//! # fn main() -> Result<(), KernelError> {
//! // A 2-node simulated cluster running the DO/CT kernel + the event
//! // facility.
//! let cluster = Cluster::new(2);
//! let facility = EventFacility::install(&cluster);
//! facility.register_event("PING");
//!
//! let handle = cluster.spawn_fn(0, |ctx| {
//!     ctx.attach_handler(
//!         EventName::user("PING"),
//!         AttachSpec::proc("pong", |_ctx, block| {
//!             HandlerDecision::Resume(block.payload.clone())
//!         }),
//!     );
//!     let me = ctx.thread_id();
//!     ctx.raise_and_wait(EventName::user("PING"), 41i64, me)
//! })?;
//! assert_eq!(handle.join()?, Value::Int(41));
//! # Ok(())
//! # }
//! ```

pub use doct_dsm as dsm;
pub use doct_events as events;
pub use doct_kernel as kernel;
pub use doct_net as net;
pub use doct_services as services;
pub use doct_telemetry as telemetry;

/// Commonly used types, re-exported for examples and downstream users.
pub mod prelude {
    pub use doct_net::{LatencyModel, NetStats, NodeId};
    pub use doct_services::prelude::*;
    pub use doct_telemetry::{RaiseVariant, Stage, Telemetry, TraceEvent};
}
