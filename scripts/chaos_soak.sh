#!/usr/bin/env bash
# Chaos soak: seeded partition/heal runs over the reliability layer.
#
# Drives the same cut -> traffic -> heal cycle as bench experiment E11
# plus the partition, soak and overload integration tests, all derived
# from one base seed so failures replay deterministically:
#
#   DOCT_SEED=123 scripts/chaos_soak.sh
#
# DOCT_LOCKDEP=1 additionally builds with the parking_lot/lockdep
# feature: runtime lock-order + blocking-point validation runs under the
# soak, and tests/lock_order.rs turns any cycle into a failure.
#
# DOCT_REACTORS=N re-runs the whole soak with every kernel loop split
# into N work-stealing reactors (KernelConfig::effective_reactors reads
# the variable in-process, overriding each test's builder).
#
# The E11 partition suite runs once per transport backend (DOCT_FABRIC=
# sim, then udp — real loopback sockets; KernelConfig::effective_fabric
# reads the variable in-process), and a real kill -9 leg
# (scripts/udp_smoke.sh) asserts the heartbeat detector marks a killed
# node process Dead with the delivery ledger balanced.
#
# Exits non-zero if any ledger fails to balance, a waiter hangs past its
# deadline, or a test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${DOCT_SEED:-3503345325}"
FEATURES=()
if [[ "${DOCT_LOCKDEP:-0}" == "1" ]]; then
  FEATURES=(--features parking_lot/lockdep)
  echo "=== lockdep enabled ==="
fi
if [[ -n "${DOCT_REACTORS:-}" && "${DOCT_REACTORS}" != "1" ]]; then
  echo "=== multi-reactor kernels: DOCT_REACTORS=${DOCT_REACTORS} ==="
fi
echo "=== chaos soak, DOCT_SEED=${SEED} ==="

echo "--- partition + soak + overload integration tests ---"
DOCT_SEED="${SEED}" cargo test --release "${FEATURES[@]}" \
  --test partition --test soak --test overload --test lock_order -- --nocapture

for fabric in sim udp; do
  echo "--- E11 partition & heal, DOCT_FABRIC=${fabric} (with telemetry) ---"
  DOCT_SEED="${SEED}" DOCT_FABRIC="${fabric}" \
    cargo run --release "${FEATURES[@]}" -p doct-bench --bin experiments -- e11
done

echo "--- multi-process kill -9 round (real UDP sockets) ---"
scripts/udp_smoke.sh

echo "=== chaos soak passed (seed ${SEED}) ==="
