#!/usr/bin/env bash
# Chaos soak: seeded partition/heal runs over the reliability layer.
#
# Drives the same cut -> traffic -> heal cycle as bench experiment E11
# plus the partition and soak integration tests, all derived from one
# base seed so failures replay deterministically:
#
#   DOCT_SEED=123 scripts/chaos_soak.sh
#
# Exits non-zero if any ledger fails to balance, a waiter hangs past its
# deadline, or a test fails.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${DOCT_SEED:-3503345325}"
echo "=== chaos soak, DOCT_SEED=${SEED} ==="

echo "--- partition + soak integration tests ---"
DOCT_SEED="${SEED}" cargo test --release --test partition --test soak -- --nocapture

echo "--- E11 partition & heal (with telemetry) ---"
DOCT_SEED="${SEED}" cargo run --release -p doct-bench --bin experiments -- e11

echo "=== chaos soak passed (seed ${SEED}) ==="
