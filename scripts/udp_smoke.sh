#!/usr/bin/env bash
# Multi-process UDP smoke: a 2-process doct-node cluster over real
# loopback sockets, including the kill -9 round.
#
#   scripts/udp_smoke.sh
#
# Process A ("target") hosts node 1 with two sleeper threads; process B
# ("driver") hosts node 0 and:
#   phase A  raises TIMER and QUIT at sleeper 1 (both must deliver),
#   phase B  kill -9's process A, raises TIMER at sleeper 2, and
#            requires the heartbeat detector to mark the node Dead and
#            the raise to resolve as a dead-target verdict.
# The driver exits 0 only if its five-term delivery ledger balances:
# requested = delivered + dead + timeout + lost + overloaded.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/doct-node
if [[ ! -x "$BIN" ]]; then
  cargo build --release -p doct-bench --bin doct-node
fi

# OS-assigned-ish ports in the dynamic range, offset by PID to let
# parallel CI jobs coexist.
BASE=$((20000 + $$ % 20000))
PEERS="127.0.0.1:${BASE},127.0.0.1:$((BASE + 1))"

WORKDIR="$(mktemp -d)"
TARGET_PID=""
cleanup() {
  [[ -n "$TARGET_PID" ]] && kill -9 "$TARGET_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "=== udp smoke: 2-process cluster on ${PEERS} ==="
"$BIN" --role target --me 1 --peers "$PEERS" > "$WORKDIR/target.out" 2>&1 &
TARGET_PID=$!

for _ in $(seq 1 100); do
  grep -q '^READY' "$WORKDIR/target.out" 2>/dev/null && break
  kill -0 "$TARGET_PID" 2>/dev/null || { cat "$WORKDIR/target.out"; echo "target died before READY"; exit 1; }
  sleep 0.1
done
grep -q '^READY' "$WORKDIR/target.out" || { cat "$WORKDIR/target.out"; echo "target never became READY"; exit 1; }
echo "target up: $(cat "$WORKDIR/target.out")"

"$BIN" --role driver --me 0 --peers "$PEERS" --victim-pid "$TARGET_PID"

echo "=== udp smoke passed ==="
