#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a captured experiments run.

Usage:
    cargo run -p doct-bench --release --bin experiments -- all > /tmp/experiments_all.txt
    python3 scripts/gen_experiments.py /tmp/experiments_all.txt
"""
import re
import sys

src = sys.argv[1] if len(sys.argv) > 1 else "/tmp/experiments_all.txt"
exp = open(src).read()
sections = {}
cur = None
for line in exp.splitlines():
    m = re.match(r"## (E\d+[b]?):", line)
    if m:
        cur = m.group(1)
        sections[cur] = [line]
    elif cur:
        sections[cur].append(line)


def sec(k):
    return "\n".join(sections.get(k, ["(missing)"])).strip()


doc = f"""# EXPERIMENTS — paper claims vs. measurements

Reproduction of *"Asynchronous Event Handling in Distributed Object-Based
Systems"* (Menon, Dasgupta, LeBlanc; ICDCS 1993).

**What the paper reports.** The paper contains **no quantitative
evaluation**: zero measured tables, zero figures. A prototype is described
as "currently in progress" (§8). Its only table is the §5.3
addressing/blocking matrix for the six `raise`/`raise_and_wait` forms.
Accordingly:

* **E1** reproduces that table as a conformance experiment (recipient sets
  and blocking behaviour measured, not assumed);
* **E2–E10** are designed experiments, one per qualitative claim, with the
  claim quoted. Measurements come from
  `cargo run -p doct-bench --release --bin experiments -- all`
  (simulated 2–32-node clusters, zero-latency fabric, so costs are
  dominated by protocol structure — exactly what the paper's arguments are
  about). Absolute numbers are not comparable to 1993 hardware; the
  *shape* — who wins, by what factor, how costs scale — is the result.

Criterion microbenches (`cargo bench --workspace`) cover the per-operation
costs of the hot paths; results quoted where relevant.

---

## E1 — the §5.3 addressing/blocking table

**Paper says (§5.3):** the six calls address a thread, a thread group, or
an object; the `_and_wait` forms block the raiser "until it is explicitly
resumed by a handler".

**Measured** (target thread / group-of-8 / object whose handlers sleep
50 ms before resuming — the raiser's latency reveals blocking):

{sec('E1')}

**Verdict:** recipient sets match the paper's table exactly; the raiser
blocks (≥ the 50 ms handler delay) for precisely the three `_and_wait`
forms. `raise_and_wait(e,gtid)` resumes on the *first* member's verdict
(the paper leaves the multi-resume policy unspecified; we chose
first-wins), so it blocks ~1 handler delay, not 8.

---

## E2 — thread location strategies

**Paper says (§7.1):** broadcast "is communication intensive and is
wasteful"; following TCBs from the root node finds the thread "in n
steps"; multicast groups joined by nodes hosting the thread are the
sophisticated alternative — but "finding a thread is harder, as threads
move around much faster than other resources".

**Measured** (tip sleeping `hops` invocation hops from its root; locate
messages per delivery, median of 5):

{sec('E2')}

**Verdict:** the paper's cost ranking reproduces. Broadcast costs 2(n−1)
messages regardless of where the thread is (probes + found/not-found
replies — the "wasteful" part). PathTrace costs hops+1: equal to n when
the thread really visited every node, but the hops=1 rows show its real
advantage — cost tracks the *chain*, not the cluster (3 vs 30 messages at
n=16). Multicast degenerates to broadcast when the thread has visited
every node (its group then contains all of them) and wins when the thread
is concentrated (4 messages at n=16/hops=1). Criterion per-locate latency
at n=8/hops=7: Broadcast ~37 µs, PathTrace ~42 µs (the hop chain is
serial), Multicast ~31 µs — broadcast is *latency*-competitive because its
probes fan out in parallel; its cost is message volume, exactly the
paper's claim.

{sec('E2b')}

**Moving-target ablation:** §7.1's race is real and needed two design
responses beyond the paper. (1) At maximum movement speed (dwell 0: the
thread is mid-invocation essentially always) every probe wave loses the
race; the kernel then *anchors* the event at the thread's root-node
activation, which the thread drains at its next delivery point there —
that is why even the dwell-0 rows deliver 50/50. (2) At moderate dwell
times broadcast/multicast probes can find the *same* event twice as the
thread moves between probe arrivals; the facility suppresses duplicates
with a seen-seq ring carried in the thread's attributes (the "dupes
suppressed" column — PathTrace's single serial probe needs none). Handler
executions are exactly 50 per 50 raises in every configuration.

---

## E3 — master handler thread vs spawn-per-event

**Paper says (§4.3, §7):** "a handler thread can be associated with the
object to handle all events on its behalf, thus eliminating
thread-creation costs"; "it is preferable to employ a master handler
thread on behalf of a passive object."

**Measured** (2 000 no-op events raised at a passive object from another
node):

{sec('E3')}

**Verdict:** the master handler thread is ~25–30× cheaper per event than
spawning a kernel thread per delivery (Criterion: 1.73 µs vs 48.3 µs per
event). The paper's design preference is strongly confirmed.

---

## E4 — event notification vs object invocation

**Paper says (§4.3):** raising an event at an object is an implicit
invocation whose "mechanism … may have much less overhead than
object-invocations."

**Measured** (same no-op request, 1 000 ops):

{sec('E4')}

**Verdict:** one-way event notification to a *remote* object costs ~0.9 µs
at the raiser vs ~29 µs for a remote invocation round trip (~30×) — the
claim holds for the asynchronous form the paper describes (no reply, no
thread shipping, master-thread execution). The synchronous form
(`raise_and_wait`, ~13 µs) still beats invocation because the reply is a
bare resume rather than a full thread-attribute return. Locally, a direct
invocation (no kernel boundary in a simulator) is cheaper than queueing an
event — the claim is specifically about the distributed case.

{sec('E4b')}

The delivery-point ablation documents our substitution for preemptive
delivery: latency sits at the ~15 µs locate+queue baseline while
uninterruptible bursts stay under ~10⁵ compute units, then grows linearly
with the burst (≈ half a burst of expected wait) — bounding the fidelity
cost of the poll-based model and telling library users how often
long-running entries should poll.

---

## E5 — TERMINATE cleanup-chain unwind (distributed locks)

**Paper says (§4.2):** "Every time a thread locks data in an object, the
unlock routine for that data is chained to the thread's TERMINATE handler.
If the threads receive a TERMINATE signal, all locked data are unlocked,
regardless of their location and scope."

**Measured** (k locks acquired round-robin from managers on 3 nodes, then
TERMINATE):

{sec('E5')}

**Verdict:** zero leaked locks at every depth; unwind time is linear in
chain depth (~25–35 µs per lock — one remote release invocation each) and
runs in LIFO order (asserted by the test suite). Criterion confirms the
pure chain-walk mechanism is linear: 1.0 µs → 34.3 µs from depth 1 to 256.
The soak tests additionally kill threads *inside* their critical sections
and verify the hot lock always comes back.

---

## E6 — the distributed ^C problem

**Paper says (§6.3):** TERMINATE at the root must notify "all threads
belonging to the application's thread-group" and all objects on the
calling chain, hunting down asynchronously spawned threads "lest they turn
into orphans".

**Measured** (root + async children over 4 nodes; ^C injected from a
console node):

{sec('E6')}

**Verdict:** every run ends with zero orphan activations, every object's
ABORT cleanup runs, and teardown completes in single-digit milliseconds.
Message cost grows linearly with thread count (one QUIT delivery+receipt
per member plus one ABORT per object) — fan-out-bounded, not quadratic.

---

## E7 — user-level virtual memory managers

**Paper says (§6.4):** external pagers let applications "bypass the strict
consistency imposed by the underlying sequentially consistent DSM"; on a
fault "the thread is suspended and the handler attached to the server is
notified"; concurrent faulters get copies that are later merged.

**Measured** (256 first-touch faults from a cold node):

{sec('E7')}

**Verdict:** the user-level path works and costs ~3–4× the kernel protocol
per fault (every fault becomes a VM_FAULT event handled by the pager
object plus a rendezvous install) — the classic external-pager overhead.
The traffic mix flips exactly as expected: kernel backing is all DSM-class
messages (3 per fault: request, forward, data), user backing is all
Event-class. Concurrent faulters on one page received 2 independent copies
and both write-backs merged — §6.4's copy/merge behaviour, which the
kernel-consistent path would forbid.

---

## E8 — identical semantics under RPC and DSM invocation

**Paper says (§2, design goal 2):** "Ensure that the mechanism works
identically regardless of whether the objects are invoked using RPC or
DSM."

**Measured** (500 counter bumps against a remote object + 50 synchronous
self-raises, both modes):

{sec('E8')}

**Verdict:** application-visible results are bit-identical (the harness
asserts it); the traffic mix is completely different — RPC ships 1 000
invocation messages, DSM ships zero invocations and a handful of
page-coherence messages (state pages migrate once, then access is local).
The full conformance grid (`tests/event_semantics_matrix.rs`) re-checks
the core semantics under all 3 locators × 2 invocation modes × 2
object-event policies.

---

## E9 — monitoring overhead

**Paper says (§6.2):** a monitor samples a thread's state on a periodic
TIMER "regardless of where it is currently executing" and reports to a
central server; the cost is left open.

**Measured** (fixed ~137 ms compute-bound job inside a remote object):

{sec('E9')}

**Verdict:** sample counts scale with frequency (the TIMER chases the
thread into the remote object; samples report its node, pc and current
object) while application slowdown stays within noise (≤ ~4%) even at a
2 ms period. Monitoring in this design is effectively free at
liveliness-checking frequencies.

---

## E10 — Medusa-style interest lists (related-work ablation)

**Paper says (§9):** "Medusa's (as well as Levin's) exception reporting
has the potential to cause a tight coupling within the system … a lot of
extra work needs to be done to maintain a 'current interest list' … and
the event reporting hierarchy tree could grow out of bounds."

**Measured** (an exceptional event arising in one shared object, reported
Medusa-style to k interest holders spread over 4 nodes vs paper-style to
the object's one installed handler):

{sec('E10')}

**Verdict:** the critique quantifies cleanly: interest-list reporting
costs ~1.5 messages per holder per event (locate + deliver fan-out, some
holders local) — linear coupling that reaches ~100 messages per report at
64 holders, against a constant 1 message for the paper's targeted object
handler. (The holders=1 Medusa row shows 0 messages when the lone holder
is co-located with the object.) The latency to notify everyone grows with
the list too. This is the paper's §9 argument, made measurable.

---

## Reproducing

```console
$ cargo run -p doct-bench --release --bin experiments -- all   # all tables
$ cargo run -p doct-bench --release --bin experiments -- e2 e6 # a subset
$ cargo bench --workspace                                      # microbenches
$ python3 scripts/gen_experiments.py /tmp/experiments_all.txt  # this file
```

Numbers above were produced on this repository's development container
(Linux, release profile). Expect different absolute values — the claims
under test are structural (ratios, scaling shapes, zero-leak / zero-orphan
invariants), and those are asserted by the harness itself.
"""
open("EXPERIMENTS.md", "w").write(doc)
print("EXPERIMENTS.md written:", len(doc), "bytes")
